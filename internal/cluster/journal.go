package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bioperf5/internal/harness"
)

// Journal is the coordinator's crash-safe completion record.  Unlike
// the scheduler's journal (which marks hashes done and relies on the
// local disk cache for the bytes), the coordinator has no local cache
// — results live on the workers and the shared hub — so its journal
// carries the full per-cell stats.  A resumed sweep replays completed
// cells straight from this file and dispatches only the remainder.
//
// The format is append-only JSONL, fsync'd per record, tolerant of a
// torn tail exactly like sched.Journal: a line that does not parse or
// lacks a key is ignored, and a missing trailing newline is repaired
// before the next append.
type Journal struct {
	mu          sync.Mutex
	f           *os.File
	done        map[string]Record
	needNewline bool
}

// Record is one completed cell: its content key and the stats the
// manifest needs to reproduce it without re-dispatching.
type Record struct {
	Key      string              `json:"key"`
	Status   string              `json:"status"`
	TraceHit bool                `json:"trace_hit,omitempty"`
	Stats    harness.KernelStats `json:"stats"`
}

// OpenJournal opens (creating if necessary) the journal at path and
// replays its records.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Record)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" || rec.Status != harness.StatusOK {
			continue // torn, foreign, or failed line: never trust
		}
		j.done[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	if end, err := f.Seek(0, 2); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			j.needNewline = true
		}
	}
	return j, nil
}

// Lookup returns the completed record for key, if one is on file.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.done[key]
	return rec, ok
}

// Len returns the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append records one completed cell and fsyncs.  Only ok cells are
// durable — a failed cell must be retried by the next run, not
// remembered.  Re-appending a key is a no-op.
func (j *Journal) Append(rec Record) error {
	if rec.Key == "" || rec.Status != harness.StatusOK {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[rec.Key]; ok {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	if j.needNewline {
		b = append([]byte{'\n'}, b...)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	j.needNewline = false
	j.done[rec.Key] = rec
	return nil
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
