package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bioperf5/internal/harness"
	"bioperf5/internal/server"
)

func TestClientRetryDelayHTTPDate(t *testing.T) {
	cli := &Client{}
	resp := func(retryAfter string) *http.Response {
		h := http.Header{}
		h.Set("Retry-After", retryAfter)
		return &http.Response{Header: h}
	}
	// RFC 9110 also allows an HTTP-date; a ~5s-out date must be
	// honored, not silently replaced by the exponential fallback
	// (250ms at attempt 0).
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := cli.retryDelay(0, resp(future)); d < 3*time.Second || d > 5*time.Second {
		t.Errorf("HTTP-date delay = %v, want ~5s", d)
	}
	// A date in the past means "now": fall back to backoff.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := cli.retryDelay(0, resp(past)); d != 250*time.Millisecond {
		t.Errorf("past-date delay = %v, want the 250ms backoff", d)
	}
	// A far-future date still caps at MaxRetryAfter.
	far := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if d := cli.retryDelay(0, resp(far)); d != 15*time.Second {
		t.Errorf("far-date delay = %v, want the 15s cap", d)
	}
	// Garbage is ignored in favor of backoff.
	if d := cli.retryDelay(1, resp("soon-ish")); d != 500*time.Millisecond {
		t.Errorf("garbage hint delay = %v, want 250ms<<1", d)
	}
}

func TestClientExponentialFallbackWithoutHint(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells:batch", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable) // no Retry-After
			return
		}
		json.NewEncoder(w).Encode(server.BatchItem{Schema: harness.SchemaVersion, Index: 0, Status: "error", Error: "stub"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	var delays []time.Duration
	cli := &Client{
		Base:         ts.URL,
		RetryBackoff: time.Millisecond,
		OnRetry:      func(d time.Duration) { delays = append(delays, d) },
	}
	err := cli.Batch(context.Background(), []server.CellRequest{{App: "Blast"}}, func(server.BatchItem) {})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("delays = %v, want doubling %v", delays, want)
	}
}

func TestClientNoRetryAfterStreamStart(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells:batch", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		requests++
		mu.Unlock()
		// Stream one good item, then tear the connection down.
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(server.BatchItem{Schema: harness.SchemaVersion, Index: 0, Status: "error", Error: "stub"})
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	cli := &Client{Base: ts.URL, RetryBackoff: time.Millisecond}
	var items []server.BatchItem
	err := cli.Batch(context.Background(),
		[]server.CellRequest{{App: "Blast"}, {App: "Fasta"}},
		func(it server.BatchItem) { items = append(items, it) })
	if err == nil {
		t.Fatal("torn stream returned no error")
	}
	if len(items) != 1 {
		t.Errorf("received %d items before the tear, want 1", len(items))
	}
	mu.Lock()
	defer mu.Unlock()
	if requests != 1 {
		t.Errorf("client sent %d requests, want 1: no retry once the stream has started "+
			"(the coordinator owns requeueing)", requests)
	}
}

func TestClientBackoffSleepHonorsCancellation(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells:batch", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	cli := &Client{Base: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := cli.Batch(ctx, []server.CellRequest{{App: "Blast"}}, func(server.BatchItem) {})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled backoff returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v; the 30s Retry-After sleep was not interrupted", d)
	}
}

func TestClientPropagatesDeadlineToWorker(t *testing.T) {
	var gotTimeout string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells:batch", func(w http.ResponseWriter, r *http.Request) {
		gotTimeout = r.URL.Query().Get("timeout")
		json.NewEncoder(w).Encode(server.BatchItem{Schema: harness.SchemaVersion, Index: 0, Status: "error", Error: "stub"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	cli := &Client{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cli.Batch(ctx, []server.CellRequest{{App: "Blast"}}, func(server.BatchItem) {}); err != nil {
		t.Fatal(err)
	}
	d, err := time.ParseDuration(gotTimeout)
	if err != nil {
		t.Fatalf("?timeout=%q is not a duration: %v", gotTimeout, err)
	}
	if d <= 50*time.Second || d > time.Minute {
		t.Errorf("propagated timeout = %v, want just under the 1m deadline", d)
	}
	// No deadline, no parameter.
	gotTimeout = "unset"
	if err := cli.Batch(context.Background(), []server.CellRequest{{App: "Blast"}}, func(server.BatchItem) {}); err != nil {
		t.Fatal(err)
	}
	if gotTimeout != "" {
		t.Errorf("deadline-free dispatch sent ?timeout=%q", gotTimeout)
	}
}

func TestClientReadyBoundsBodyRead(t *testing.T) {
	// A worker streaming an endless /readyz body must not hang the
	// probe: the read is bounded, and the status decides.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		f := w.(http.Flusher)
		for i := 0; i < 1000; i++ {
			if _, err := w.Write(make([]byte, 64*1024)); err != nil {
				return
			}
			f.Flush()
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	cli := &Client{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- cli.Ready(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Ready = %v, want nil (status was 200)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Ready still draining a 64MB body after 5s; the read is unbounded")
	}
}
