package cluster

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's four states.
type BreakerState int

const (
	// BreakerClosed: the worker is healthy, dispatch flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the breaker; dispatch
	// is suspended until the cooldown elapses and a /readyz probe
	// succeeds.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and a probe succeeded; one
	// trial dispatch decides whether the worker re-closes or re-opens.
	BreakerHalfOpen
	// BreakerQuarantined: the breaker tripped too many times — the
	// worker is flapping and is permanently removed from the rotation
	// for this sweep.
	BreakerQuarantined
)

// String names the state for logs and error messages.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// breaker is a per-worker circuit breaker.  Closed is the happy path;
// FailureThreshold consecutive dispatch failures open it.  While open,
// the owner waits out Cooldown and probes /readyz; a successful probe
// moves to half-open, where the next dispatch outcome decides: success
// re-closes, failure re-opens.  Each transition into open counts as a
// trip, and QuarantineTrips trips quarantine the worker for good — a
// link that keeps flapping wastes more work through re-dispatch than
// it contributes.  Probe failures while open do NOT count as trips:
// a long blackout should end in recovery, not quarantine.
type breaker struct {
	failureThreshold int
	cooldown         time.Duration
	quarantineTrips  int
	now              func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	trips    int
	openedAt time.Time
}

// breakerConfig sizes a breaker; zero values pick the defaults.
type breakerConfig struct {
	FailureThreshold int           // consecutive failures to open (default 3)
	Cooldown         time.Duration // open → probe wait (default 500ms)
	QuarantineTrips  int           // trips to quarantine (default 3)
	Now              func() time.Time
}

func newBreaker(cfg breakerConfig) *breaker {
	b := &breaker{
		failureThreshold: cfg.FailureThreshold,
		cooldown:         cfg.Cooldown,
		quarantineTrips:  cfg.QuarantineTrips,
		now:              cfg.Now,
	}
	if b.failureThreshold <= 0 {
		b.failureThreshold = 3
	}
	if b.cooldown <= 0 {
		b.cooldown = 500 * time.Millisecond
	}
	if b.quarantineTrips <= 0 {
		b.quarantineTrips = 3
	}
	if b.now == nil {
		b.now = time.Now
	}
	return b
}

// State reports the current state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Health scores the worker in [0,1]: 1 is a breaker that never
// tripped, each trip costs a third, quarantine is 0.  The coordinator
// exports the fleet minimum as a gauge.
func (b *breaker) Health() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerQuarantined {
		return 0
	}
	h := 1 - float64(b.trips)/float64(b.quarantineTrips)
	if h < 0 {
		h = 0
	}
	return h
}

// Failure records a dispatch failure and returns the resulting state.
// While closed it counts toward the threshold; the threshold crossing
// and any half-open failure trip the breaker, and enough trips
// quarantine it.
func (b *breaker) Failure() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.failureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen, BreakerQuarantined:
		// Failures while open (a failed probe counted by the caller, a
		// straggling in-flight dispatch) carry no new information.
	}
	return b.state
}

// Trip forces the breaker open regardless of the consecutive-failure
// count — the heartbeat uses it when a worker misses too many probes.
// Returns the resulting state.
func (b *breaker) Trip() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed || b.state == BreakerHalfOpen {
		b.trip()
	}
	return b.state
}

// trip moves to open (or quarantined), caller holds the lock.
func (b *breaker) trip() {
	b.trips++
	b.failures = 0
	if b.trips >= b.quarantineTrips {
		b.state = BreakerQuarantined
		return
	}
	b.state = BreakerOpen
	b.openedAt = b.now()
}

// Success records a successful dispatch: half-open re-closes, closed
// clears the consecutive-failure count.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.failures = 0
	}
}

// ProbeDue reports whether the cooldown has elapsed and a /readyz
// probe should be attempted; zero when not open (or not yet due), else
// the remaining wait is returned for the caller to sleep.
func (b *breaker) ProbeDue() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return false, 0
	}
	rem := b.cooldown - b.now().Sub(b.openedAt)
	if rem > 0 {
		return false, rem
	}
	return true, 0
}

// ProbeResult records the outcome of a /readyz probe while open.
// Success moves to half-open; failure restarts the cooldown without
// counting a trip, so an arbitrarily long partition ends in recovery
// rather than quarantine.
func (b *breaker) ProbeResult(ok bool) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return b.state
	}
	if ok {
		b.state = BreakerHalfOpen
	} else {
		b.openedAt = b.now()
	}
	return b.state
}
