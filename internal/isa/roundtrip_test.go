package isa

import (
	"math/rand"
	"testing"
)

// randomValid produces a random structurally valid instruction.
func randomValid(rng *rand.Rand) Instruction {
	gpr := func() Reg { return Reg(rng.Intn(32)) }
	crf := func() Reg { return CR0 + Reg(rng.Intn(8)) }
	bit := func() CRBit { return CRBit(rng.Intn(3)) } // lt/gt/eq
	imm16 := func() int64 { return int64(int16(rng.Uint64())) }
	uimm16 := func() int64 { return int64(rng.Intn(1 << 16)) }
	sh := func() int64 { return int64(rng.Intn(64)) }
	target := func(idx int) int { return idx + rng.Intn(4000) - 2000 }

	const idx = 4000
	switch rng.Intn(14) {
	case 0:
		return Instruction{Op: OpAdd, RT: gpr(), RA: gpr(), RB: gpr()}
	case 1:
		return Instruction{Op: OpAddi, RT: gpr(), RA: gpr(), Imm: imm16()}
	case 2:
		return Instruction{Op: OpMulli, RT: gpr(), RA: gpr(), Imm: imm16()}
	case 3:
		return Instruction{Op: OpAndi, RT: gpr(), RA: gpr(), Imm: uimm16()}
	case 4:
		return Instruction{Op: OpSldi, RT: gpr(), RA: gpr(), Imm: sh()}
	case 5:
		return Instruction{Op: OpMax, RT: gpr(), RA: gpr(), RB: gpr()}
	case 6:
		return Instruction{Op: OpIsel, RT: gpr(), RA: gpr(), RB: gpr(), CRF: crf(), Bit: bit()}
	case 7:
		return Instruction{Op: OpCmpd, CRF: crf(), RA: gpr(), RB: gpr(), RT: NoReg}
	case 8:
		return Instruction{Op: OpCmpdi, CRF: crf(), RA: gpr(), Imm: imm16(), RT: NoReg}
	case 9:
		return Instruction{Op: OpBc, CRF: crf(), Bit: bit(), Want: rng.Intn(2) == 0, Target: target(idx)}
	case 10:
		return Instruction{Op: OpLwz, RT: gpr(), RA: gpr(), Imm: imm16()}
	case 11:
		return Instruction{Op: OpStdx, RT: gpr(), RA: gpr(), RB: gpr()}
	case 12:
		return Instruction{Op: OpLhax, RT: gpr(), RA: gpr(), RB: gpr()}
	default:
		return Instruction{Op: OpB, Target: target(idx), Imm: int64(rng.Intn(2))}
	}
}

// TestRandomizedEncodeDecodeRoundTrip fuzzes the codec with thousands
// of structurally valid instructions.
func TestRandomizedEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const idx = 4000
	for trial := 0; trial < 5000; trial++ {
		ins := randomValid(rng)
		word, err := Encode(&ins, idx)
		if err != nil {
			t.Fatalf("trial %d: encode %+v: %v", trial, ins, err)
		}
		got, err := Decode(word, idx)
		if err != nil {
			t.Fatalf("trial %d: decode %#08x (%s): %v", trial, word, ins.Disasm(), err)
		}
		want := normalizeForEncoding(ins)
		gotN := normalizeForEncoding(got)
		if gotN != want {
			t.Fatalf("trial %d: round trip mismatch\n in:  %+v\n out: %+v", trial, want, gotN)
		}
	}
}

// TestEncodeAllProgramsAreDecodable assembles a nontrivial program and
// pushes it through the binary level and back.
func TestEncodeAllProgramsAreDecodable(t *testing.T) {
	a := NewAsm()
	a.Label("f")
	a.Li64(R3, 0x123456789ABC)
	a.Emit(Instruction{Op: OpMtctr, RA: R3})
	a.Label("loop")
	a.Emit(Instruction{Op: OpMax, RT: R4, RA: R4, RB: R3})
	a.Emit(Instruction{Op: OpCmpdi, CRF: CR1, RA: R4, Imm: 0})
	a.Emit(Instruction{Op: OpIsel, RT: R5, RA: R4, RB: R3, CRF: CR1, Bit: CRGT})
	a.Branch(Instruction{Op: OpBdnz}, "loop")
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	words, err := p.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeAll(words)
	if err != nil {
		t.Fatal(err)
	}
	words2, err := q.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if words[i] != words2[i] {
			t.Errorf("word %d not stable: %#08x vs %#08x", i, words[i], words2[i])
		}
	}
}
