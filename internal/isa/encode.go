package isa

import "fmt"

// The subset uses fixed 32-bit instruction words in PowerPC-style
// forms.  The exact opcode assignments are our own (documented here
// rather than copied from the architecture books), but the field layout
// follows the PowerPC manual so the encoder/decoder exercises the same
// kinds of bit surgery a real implementation would:
//
//	D-form:  opcd:6 | rt:5 | ra:5  | d:16             (immediates, disp loads/stores)
//	I-form:  opcd:6 | li:24 | aa:1 | lk:1             (b, bl)
//	B-form:  opcd:6 | bo:5 | bi:5  | bd:14 | aa:1 | lk:1  (bc, bdnz)
//	X-form:  opcd:6 | rt:5 | ra:5  | rb:5  | xo:10 | rc:1 (register-register, escape opcd 31)
//	A-form:  opcd:6 | rt:5 | ra:5  | rb:5  | bc:5  | xo:5 | rc:1 (isel, escape opcd 30)
//
// The paper's hypothetical max instruction is given XO 543 under the
// X-form escape — an opcode/XO combination unused by the real POWER ISA,
// matching the paper's "we selected an unused PowerPC primary and
// extended opcode combination".
const (
	opcdXForm = 31 // X-form escape primary opcode
	opcdAForm = 30 // A-form escape primary opcode (isel)
	opcdB     = 18 // I-form branch
	opcdBc    = 16 // B-form conditional branch

	xoMax = 543 // the paper's max instruction
)

type encForm uint8

const (
	formD encForm = iota
	formI
	formB
	formX
	formA
)

type encEntry struct {
	form encForm
	opcd uint32 // primary opcode (D/I/B forms)
	xo   uint32 // extended opcode (X/A forms)
}

// encTable maps each Op to its encoding.  D-form primary opcodes are
// assigned in the 1..29 and 32..62 ranges; X-form operations share
// primary opcode 31 and are distinguished by XO.
var encTable = map[Op]encEntry{
	OpAddi:   {form: formD, opcd: 14},
	OpAddis:  {form: formD, opcd: 15},
	OpMulli:  {form: formD, opcd: 7},
	OpAndi:   {form: formD, opcd: 28},
	OpOri:    {form: formD, opcd: 24},
	OpXori:   {form: formD, opcd: 26},
	OpCmpdi:  {form: formD, opcd: 11},
	OpCmpldi: {form: formD, opcd: 10},
	OpSldi:   {form: formD, opcd: 21},
	OpSrdi:   {form: formD, opcd: 22},
	OpSradi:  {form: formD, opcd: 23},

	OpLbz: {form: formD, opcd: 34},
	OpLhz: {form: formD, opcd: 40},
	OpLha: {form: formD, opcd: 42},
	OpLwz: {form: formD, opcd: 32},
	OpLwa: {form: formD, opcd: 33},
	OpLd:  {form: formD, opcd: 58},
	OpStb: {form: formD, opcd: 38},
	OpSth: {form: formD, opcd: 44},
	OpStw: {form: formD, opcd: 36},
	OpStd: {form: formD, opcd: 62},

	OpB:    {form: formI, opcd: opcdB},
	OpBc:   {form: formB, opcd: opcdBc},
	OpBdnz: {form: formB, opcd: opcdBc},

	OpAdd:   {form: formX, xo: 266},
	OpSubf:  {form: formX, xo: 40},
	OpNeg:   {form: formX, xo: 104},
	OpMulld: {form: formX, xo: 233},
	OpDivd:  {form: formX, xo: 489},
	OpAnd:   {form: formX, xo: 28},
	OpOr:    {form: formX, xo: 444},
	OpXor:   {form: formX, xo: 316},
	OpSld:   {form: formX, xo: 27},
	OpSrd:   {form: formX, xo: 539},
	OpSrad:  {form: formX, xo: 794},
	OpExtsb: {form: formX, xo: 954},
	OpExtsh: {form: formX, xo: 922},
	OpExtsw: {form: formX, xo: 986},
	OpMax:   {form: formX, xo: xoMax},
	OpCmpd:  {form: formX, xo: 0},
	OpCmpld: {form: formX, xo: 32},
	OpLbzx:  {form: formX, xo: 87},
	OpLhzx:  {form: formX, xo: 279},
	OpLhax:  {form: formX, xo: 343},
	OpLwzx:  {form: formX, xo: 23},
	OpLwax:  {form: formX, xo: 341},
	OpLdx:   {form: formX, xo: 21},
	OpStbx:  {form: formX, xo: 215},
	OpSthx:  {form: formX, xo: 407},
	OpStwx:  {form: formX, xo: 151},
	OpStdx:  {form: formX, xo: 149},
	OpMtlr:  {form: formX, xo: 467},
	OpMflr:  {form: formX, xo: 339},
	OpMtctr: {form: formX, xo: 468},
	OpMfctr: {form: formX, xo: 340},
	OpBlr:   {form: formX, xo: 16},
	OpNop:   {form: formX, xo: 1023},

	OpIsel: {form: formA, xo: 15},
}

// decD maps D/I/B-form primary opcodes back to operations.
var decD map[uint32]Op

// decX maps X-form extended opcodes back to operations.
var decX map[uint32]Op

func init() {
	decD = make(map[uint32]Op)
	decX = make(map[uint32]Op)
	for op, e := range encTable {
		switch e.form {
		case formD, formI:
			decD[e.opcd] = op
		case formX:
			decX[e.xo] = op
		}
	}
}

func fits16s(v int64) bool { return v >= -0x8000 && v <= 0x7FFF }
func fits16u(v int64) bool { return v >= 0 && v <= 0xFFFF }
func fits24s(v int64) bool { return v >= -(1<<23) && v < (1<<23) }
func fits14s(v int64) bool { return v >= -(1<<13) && v < (1<<13) }

// Encode converts the instruction at program index idx into its 32-bit
// word.  Branch targets are encoded as signed instruction-count
// displacements relative to idx.
func Encode(ins *Instruction, idx int) (uint32, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	e, ok := encTable[ins.Op]
	if !ok {
		return 0, fmt.Errorf("isa: no encoding for %s", ins.Op)
	}
	switch e.form {
	case formD:
		imm := ins.Imm
		var immOK bool
		switch ins.Op {
		case OpAndi, OpOri, OpXori, OpCmpldi:
			immOK = fits16u(imm)
		case OpSldi, OpSrdi, OpSradi:
			immOK = imm >= 0 && imm < 64
		default:
			immOK = fits16s(imm)
		}
		if !immOK {
			return 0, fmt.Errorf("isa: %s: immediate %d out of range", ins.Op, imm)
		}
		rt := uint32(ins.RT)
		if ins.Op.Info().Compare {
			rt = uint32(ins.CRF-CR0) << 2 // crf in high bits of the RT slot
		}
		return e.opcd<<26 | rt<<21 | uint32(ins.RA)<<16 | uint32(uint16(imm)), nil

	case formI:
		disp := int64(ins.Target - idx)
		if !fits24s(disp) {
			return 0, fmt.Errorf("isa: b: displacement %d out of range", disp)
		}
		lk := uint32(0)
		if ins.ImmLK() {
			lk = 1
		}
		return e.opcd<<26 | (uint32(disp)&0xFFFFFF)<<2 | lk, nil

	case formB:
		disp := int64(ins.Target - idx)
		if !fits14s(disp) {
			return 0, fmt.Errorf("isa: %s: displacement %d out of range", ins.Op, disp)
		}
		var bo, bi uint32
		if ins.Op == OpBdnz {
			bo = 16
		} else {
			bo = 4 // branch if bit clear
			if ins.Want {
				bo = 12 // branch if bit set
			}
			bi = uint32(ins.CRF-CR0)<<2 | uint32(ins.Bit)
		}
		return e.opcd<<26 | bo<<21 | bi<<16 | (uint32(disp)&0x3FFF)<<2, nil

	case formX:
		rt := uint32(ins.RT)
		if ins.RT == NoReg {
			rt = 0
		}
		if ins.Op.Info().Compare {
			rt = uint32(ins.CRF-CR0) << 2
		}
		ra, rb := uint32(ins.RA), uint32(ins.RB)
		if ins.RA == NoReg {
			ra = 0
		}
		if ins.RB == NoReg {
			rb = 0
		}
		return uint32(opcdXForm)<<26 | rt<<21 | ra<<16 | rb<<11 | e.xo<<1, nil

	case formA:
		bc := uint32(ins.CRF-CR0)<<2 | uint32(ins.Bit)
		return uint32(opcdAForm)<<26 | uint32(ins.RT)<<21 | uint32(ins.RA)<<16 |
			uint32(ins.RB)<<11 | bc<<6 | e.xo<<1, nil
	}
	return 0, fmt.Errorf("isa: unknown form for %s", ins.Op)
}

func signExt(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode converts a 32-bit instruction word at program index idx back
// into an Instruction.  It is the exact inverse of Encode.
func Decode(word uint32, idx int) (Instruction, error) {
	opcd := word >> 26
	switch opcd {
	case opcdXForm:
		xo := (word >> 1) & 0x3FF
		op, ok := decX[xo]
		if !ok {
			return Instruction{}, fmt.Errorf("isa: decode: unknown X-form xo %d", xo)
		}
		ins := Instruction{
			Op: op,
			RT: Reg(word >> 21 & 31),
			RA: Reg(word >> 16 & 31),
			RB: Reg(word >> 11 & 31),
		}
		if op.Info().Compare {
			ins.CRF = CR0 + Reg(word>>23&7)
			ins.RT = NoReg
		}
		switch op {
		case OpBlr, OpNop:
			ins.RT, ins.RA, ins.RB = NoReg, NoReg, NoReg
		case OpNeg, OpExtsb, OpExtsh, OpExtsw:
			ins.RB = NoReg
		case OpMtlr, OpMtctr:
			ins.RT, ins.RB = NoReg, NoReg
		case OpMflr, OpMfctr:
			ins.RA, ins.RB = NoReg, NoReg
		}
		return ins, nil

	case opcdAForm:
		bc := word >> 6 & 31
		return Instruction{
			Op:  OpIsel,
			RT:  Reg(word >> 21 & 31),
			RA:  Reg(word >> 16 & 31),
			RB:  Reg(word >> 11 & 31),
			CRF: CR0 + Reg(bc>>2),
			Bit: CRBit(bc & 3),
		}, nil

	case opcdB:
		disp := signExt(word>>2&0xFFFFFF, 24)
		return Instruction{
			Op:     OpB,
			Imm:    int64(word & 1),
			Target: idx + int(disp),
		}, nil

	case opcdBc:
		bo := word >> 21 & 31
		bi := word >> 16 & 31
		disp := signExt(word>>2&0x3FFF, 14)
		if bo == 16 {
			return Instruction{Op: OpBdnz, Target: idx + int(disp)}, nil
		}
		return Instruction{
			Op:     OpBc,
			CRF:    CR0 + Reg(bi>>2),
			Bit:    CRBit(bi & 3),
			Want:   bo == 12,
			Target: idx + int(disp),
		}, nil
	}

	op, ok := decD[opcd]
	if !ok {
		return Instruction{}, fmt.Errorf("isa: decode: unknown primary opcode %d", opcd)
	}
	ins := Instruction{
		Op:  op,
		RT:  Reg(word >> 21 & 31),
		RA:  Reg(word >> 16 & 31),
		Imm: signExt(word&0xFFFF, 16),
	}
	switch op {
	case OpAndi, OpOri, OpXori, OpCmpldi, OpSldi, OpSrdi, OpSradi:
		ins.Imm = int64(word & 0xFFFF) // unsigned immediates
	}
	if op.Info().Compare {
		ins.CRF = CR0 + Reg(word>>23&7)
		ins.RT = NoReg
	}
	return ins, nil
}
