package isa

import (
	"fmt"
	"strings"
)

// Program is an assembled instruction sequence.  Instruction addresses
// are instruction indices; a program loaded at base byte address A
// places instruction i at A + 4*i.
type Program struct {
	Code    []Instruction
	Symbols map[string]int // label -> instruction index
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// Disasm renders the whole program as assembler text with labels.
func (p *Program) Disasm() string {
	labels := make(map[int][]string)
	for name, idx := range p.Symbols {
		labels[idx] = append(labels[idx], name)
	}
	var b strings.Builder
	for i := range p.Code {
		for _, l := range labels[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %4d: %s\n", i, p.Code[i].Disasm())
	}
	return b.String()
}

// EncodeAll encodes every instruction to its 32-bit word.
func (p *Program) EncodeAll() ([]uint32, error) {
	words := make([]uint32, len(p.Code))
	for i := range p.Code {
		w, err := Encode(&p.Code[i], i)
		if err != nil {
			return nil, fmt.Errorf("at %d (%s): %w", i, p.Code[i].Disasm(), err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeAll is the inverse of EncodeAll (symbol names are not
// recoverable from machine code and are left empty).
func DecodeAll(words []uint32) (*Program, error) {
	p := &Program{Code: make([]Instruction, len(words)), Symbols: map[string]int{}}
	for i, w := range words {
		ins, err := Decode(w, i)
		if err != nil {
			return nil, fmt.Errorf("at %d: %w", i, err)
		}
		p.Code[i] = ins
	}
	return p, nil
}

// Asm is an incremental assembler: instructions are emitted in order,
// labels may be defined and referenced in any order, and Finish resolves
// all fixups.
type Asm struct {
	code   []Instruction
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	at    int
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Label defines name at the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.code)
}

// Emit appends a raw instruction.
func (a *Asm) Emit(ins Instruction) {
	a.code = append(a.code, ins)
}

// Pos returns the index the next instruction will occupy.
func (a *Asm) Pos() int { return len(a.code) }

// Branch emits a branch instruction targeting label.
func (a *Asm) Branch(ins Instruction, label string) {
	a.fixups = append(a.fixups, fixup{at: len(a.code), label: label})
	a.code = append(a.code, ins)
}

// Convenience emitters used by the code generator and by tests.

// Li loads a 16-bit signed immediate into rt.
func (a *Asm) Li(rt Reg, v int64) { a.Emit(Instruction{Op: OpAddi, RT: rt, RA: R0, Imm: v}) }

// Li64 materializes an arbitrary 64-bit constant using addis/ori/sldi
// sequences (1 to 5 instructions).
func (a *Asm) Li64(rt Reg, v int64) {
	if v >= -0x8000 && v <= 0x7FFF {
		a.Li(rt, v)
		return
	}
	// Build the upper bits recursively, shift left 16, then OR in the
	// next 16-bit chunk.  v>>16 converges to 0 or -1, both of which fit
	// the 16-bit base case, so the recursion terminates.
	a.Li64(rt, v>>16)
	a.Emit(Instruction{Op: OpSldi, RT: rt, RA: rt, Imm: 16})
	if lo := v & 0xFFFF; lo != 0 {
		a.Emit(Instruction{Op: OpOri, RT: rt, RA: rt, Imm: lo})
	}
}

// Mr emits a register move (or rt, ra, ra).
func (a *Asm) Mr(rt, ra Reg) { a.Emit(Instruction{Op: OpOr, RT: rt, RA: ra, RB: ra}) }

// Ret emits a function return.
func (a *Asm) Ret() { a.Emit(Instruction{Op: OpBlr}) }

// Finish resolves fixups and returns the assembled program.
func (a *Asm) Finish() (*Program, error) {
	for _, f := range a.fixups {
		idx, ok := a.labels[f.label]
		if !ok {
			a.errs = append(a.errs, fmt.Errorf("isa: undefined label %q", f.label))
			continue
		}
		a.code[f.at].Target = idx
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	p := &Program{Code: a.code, Symbols: a.labels}
	for i := range p.Code {
		if err := p.Code[i].Validate(); err != nil {
			return nil, fmt.Errorf("at %d: %w", i, err)
		}
	}
	return p, nil
}
