package isa

import "fmt"

// Disasm renders the instruction in an assembler-like syntax.  Branch
// targets are shown as absolute instruction indices (the assembler works
// in instruction units, not bytes).
func (ins *Instruction) Disasm() string {
	switch ins.Op {
	case OpAddi, OpAddis:
		if ins.RA == R0 {
			mn := "li"
			if ins.Op == OpAddis {
				mn = "lis"
			}
			return fmt.Sprintf("%-7s %s, %d", mn, ins.RT, ins.Imm)
		}
		return fmt.Sprintf("%-7s %s, %s, %d", ins.Op, ins.RT, ins.RA, ins.Imm)
	case OpMulli, OpAndi, OpOri, OpXori, OpSldi, OpSrdi, OpSradi:
		return fmt.Sprintf("%-7s %s, %s, %d", ins.Op, ins.RT, ins.RA, ins.Imm)
	case OpAdd, OpSubf, OpMulld, OpDivd, OpAnd, OpOr, OpXor,
		OpSld, OpSrd, OpSrad, OpMax:
		return fmt.Sprintf("%-7s %s, %s, %s", ins.Op, ins.RT, ins.RA, ins.RB)
	case OpNeg, OpExtsb, OpExtsh, OpExtsw:
		return fmt.Sprintf("%-7s %s, %s", ins.Op, ins.RT, ins.RA)
	case OpIsel:
		return fmt.Sprintf("%-7s %s, %s, %s, 4*%s+%s",
			ins.Op, ins.RT, ins.RA, ins.RB, ins.CRF, ins.Bit)
	case OpCmpd, OpCmpld:
		return fmt.Sprintf("%-7s %s, %s, %s", ins.Op, ins.CRF, ins.RA, ins.RB)
	case OpCmpdi, OpCmpldi:
		return fmt.Sprintf("%-7s %s, %s, %d", ins.Op, ins.CRF, ins.RA, ins.Imm)
	case OpB:
		mn := "b"
		if ins.ImmLK() {
			mn = "bl"
		}
		return fmt.Sprintf("%-7s .%d", mn, ins.Target)
	case OpBc:
		mn := "bf" // branch if false
		if ins.Want {
			mn = "bt"
		}
		return fmt.Sprintf("%-7s 4*%s+%s, .%d", mn, ins.CRF, ins.Bit, ins.Target)
	case OpBdnz:
		return fmt.Sprintf("%-7s .%d", ins.Op, ins.Target)
	case OpBlr, OpNop:
		return ins.Op.String()
	case OpLbz, OpLhz, OpLha, OpLwz, OpLwa, OpLd,
		OpStb, OpSth, OpStw, OpStd:
		return fmt.Sprintf("%-7s %s, %d(%s)", ins.Op, ins.RT, ins.Imm, ins.RA)
	case OpLbzx, OpLhzx, OpLhax, OpLwzx, OpLwax, OpLdx,
		OpStbx, OpSthx, OpStwx, OpStdx:
		return fmt.Sprintf("%-7s %s, %s, %s", ins.Op, ins.RT, ins.RA, ins.RB)
	case OpMtlr, OpMtctr:
		return fmt.Sprintf("%-7s %s", ins.Op, ins.RA)
	case OpMflr, OpMfctr:
		return fmt.Sprintf("%-7s %s", ins.Op, ins.RT)
	}
	return fmt.Sprintf("%-7s ???", ins.Op)
}
