package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R31, "r31"}, {CR0, "cr0"}, {CR7, "cr7"},
		{LR, "lr"}, {CTR, "ctr"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegClassPredicates(t *testing.T) {
	for r := R0; r <= R31; r++ {
		if !r.IsGPR() || r.IsCR() {
			t.Errorf("%s misclassified", r)
		}
	}
	for r := CR0; r <= CR7; r++ {
		if r.IsGPR() || !r.IsCR() {
			t.Errorf("%s misclassified", r)
		}
	}
	if LR.IsGPR() || LR.IsCR() || CTR.IsGPR() || CTR.IsCR() {
		t.Error("lr/ctr misclassified")
	}
}

func TestOpInfoComplete(t *testing.T) {
	for op := OpAdd; op < NumOps; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no metadata", op)
		}
		if info.Latency <= 0 {
			t.Errorf("op %s has non-positive latency %d", info.Name, info.Latency)
		}
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		ins  Instruction
		uses []Reg
		defs []Reg
	}{
		{Instruction{Op: OpAdd, RT: R3, RA: R4, RB: R5}, []Reg{R4, R5}, []Reg{R3}},
		{Instruction{Op: OpAddi, RT: R3, RA: R0, Imm: 1}, nil, []Reg{R3}},
		{Instruction{Op: OpAddi, RT: R3, RA: R4, Imm: 1}, []Reg{R4}, []Reg{R3}},
		{Instruction{Op: OpMax, RT: R3, RA: R4, RB: R5}, []Reg{R4, R5}, []Reg{R3}},
		{Instruction{Op: OpIsel, RT: R3, RA: R4, RB: R5, CRF: CR1, Bit: CRGT}, []Reg{R4, R5, CR1}, []Reg{R3}},
		{Instruction{Op: OpCmpd, CRF: CR2, RA: R4, RB: R5}, []Reg{R4, R5}, []Reg{CR2}},
		{Instruction{Op: OpBc, CRF: CR2, Bit: CRGT, Want: true}, []Reg{CR2}, nil},
		{Instruction{Op: OpBdnz}, []Reg{CTR}, []Reg{CTR}},
		{Instruction{Op: OpBlr}, []Reg{LR}, nil},
		{Instruction{Op: OpLwzx, RT: R3, RA: R4, RB: R5}, []Reg{R4, R5}, []Reg{R3}},
		{Instruction{Op: OpStw, RT: R3, RA: R4, Imm: 8}, []Reg{R3, R4}, nil},
		{Instruction{Op: OpMtlr, RA: R3}, []Reg{R3}, []Reg{LR}},
		{Instruction{Op: OpMflr, RT: R3}, []Reg{LR}, []Reg{R3}},
		{Instruction{Op: OpMfctr, RT: R3}, []Reg{CTR}, []Reg{R3}},
	}
	for _, c := range cases {
		if got := c.ins.Uses(nil); !regsEqual(got, c.uses) {
			t.Errorf("%s: Uses = %v, want %v", c.ins.Disasm(), got, c.uses)
		}
		if got := c.ins.Defs(nil); !regsEqual(got, c.defs) {
			t.Errorf("%s: Defs = %v, want %v", c.ins.Disasm(), got, c.defs)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMflrTracksLR verifies mflr reads LR and defines its target, so
// the timing model sees the dependency through the link register.
func TestMflrTracksLR(t *testing.T) {
	ins := Instruction{Op: OpMflr, RT: R3}
	if defs := ins.Defs(nil); len(defs) != 1 || defs[0] != R3 {
		t.Fatalf("mflr defs = %v", defs)
	}
	if uses := ins.Uses(nil); len(uses) != 1 || uses[0] != LR {
		t.Fatalf("mflr uses = %v", uses)
	}
}

// encodableSamples returns one representative valid instruction per
// encodable operation.
func encodableSamples() []Instruction {
	return []Instruction{
		{Op: OpAdd, RT: R3, RA: R4, RB: R5},
		{Op: OpAddi, RT: R3, RA: R4, Imm: -42},
		{Op: OpAddis, RT: R3, RA: R4, Imm: 17},
		{Op: OpSubf, RT: R6, RA: R7, RB: R8},
		{Op: OpNeg, RT: R9, RA: R10},
		{Op: OpMulld, RT: R11, RA: R12, RB: R13},
		{Op: OpMulli, RT: R14, RA: R15, Imm: 1000},
		{Op: OpDivd, RT: R16, RA: R17, RB: R18},
		{Op: OpAnd, RT: R3, RA: R4, RB: R5},
		{Op: OpAndi, RT: R3, RA: R4, Imm: 0xFFFF},
		{Op: OpOr, RT: R3, RA: R4, RB: R5},
		{Op: OpOri, RT: R3, RA: R4, Imm: 0x1234},
		{Op: OpXor, RT: R3, RA: R4, RB: R5},
		{Op: OpXori, RT: R3, RA: R4, Imm: 0xBEEF},
		{Op: OpSld, RT: R3, RA: R4, RB: R5},
		{Op: OpSrd, RT: R3, RA: R4, RB: R5},
		{Op: OpSrad, RT: R3, RA: R4, RB: R5},
		{Op: OpSldi, RT: R3, RA: R4, Imm: 63},
		{Op: OpSrdi, RT: R3, RA: R4, Imm: 1},
		{Op: OpSradi, RT: R3, RA: R4, Imm: 31},
		{Op: OpExtsb, RT: R3, RA: R4},
		{Op: OpExtsh, RT: R3, RA: R4},
		{Op: OpExtsw, RT: R3, RA: R4},
		{Op: OpMax, RT: R3, RA: R4, RB: R5},
		{Op: OpIsel, RT: R3, RA: R4, RB: R5, CRF: CR3, Bit: CRGT},
		{Op: OpCmpd, CRF: CR1, RA: R4, RB: R5, RT: NoReg},
		{Op: OpCmpdi, CRF: CR7, RA: R4, Imm: -1, RT: NoReg},
		{Op: OpCmpld, CRF: CR0, RA: R4, RB: R5, RT: NoReg},
		{Op: OpCmpldi, CRF: CR2, RA: R4, Imm: 7, RT: NoReg},
		{Op: OpB, Target: 100},
		{Op: OpB, Target: 2, Imm: 1}, // bl
		{Op: OpBc, CRF: CR4, Bit: CREQ, Want: true, Target: 33},
		{Op: OpBc, CRF: CR4, Bit: CRLT, Want: false, Target: 60},
		{Op: OpBdnz, Target: 40},
		{Op: OpBlr, RT: NoReg, RA: NoReg, RB: NoReg},
		{Op: OpLbz, RT: R3, RA: R4, Imm: 12},
		{Op: OpLbzx, RT: R3, RA: R4, RB: R5},
		{Op: OpLhz, RT: R3, RA: R4, Imm: -2},
		{Op: OpLhzx, RT: R3, RA: R4, RB: R5},
		{Op: OpLha, RT: R3, RA: R4, Imm: 2},
		{Op: OpLhax, RT: R3, RA: R4, RB: R5},
		{Op: OpLwz, RT: R3, RA: R4, Imm: 4},
		{Op: OpLwzx, RT: R3, RA: R4, RB: R5},
		{Op: OpLwa, RT: R3, RA: R4, Imm: 8},
		{Op: OpLwax, RT: R3, RA: R4, RB: R5},
		{Op: OpLd, RT: R3, RA: R4, Imm: 16},
		{Op: OpLdx, RT: R3, RA: R4, RB: R5},
		{Op: OpStb, RT: R3, RA: R4, Imm: 1},
		{Op: OpStbx, RT: R3, RA: R4, RB: R5},
		{Op: OpSth, RT: R3, RA: R4, Imm: 2},
		{Op: OpSthx, RT: R3, RA: R4, RB: R5},
		{Op: OpStw, RT: R3, RA: R4, Imm: 4},
		{Op: OpStwx, RT: R3, RA: R4, RB: R5},
		{Op: OpStd, RT: R3, RA: R4, Imm: 8},
		{Op: OpStdx, RT: R3, RA: R4, RB: R5},
		{Op: OpMtlr, RA: R3, RT: NoReg},
		{Op: OpMflr, RT: R3, RA: NoReg},
		{Op: OpMtctr, RA: R3, RT: NoReg},
		{Op: OpMfctr, RT: R3, RA: NoReg},
		{Op: OpNop, RT: NoReg, RA: NoReg, RB: NoReg},
	}
}

func normalizeForEncoding(ins Instruction) Instruction {
	// Fields the encoding legitimately does not preserve for a given
	// op (unused register slots) are normalized to NoReg/zero by
	// Decode; apply the same normalization to the original.
	switch ins.Op {
	case OpBlr, OpNop:
		ins.RT, ins.RA, ins.RB = NoReg, NoReg, NoReg
	case OpB, OpBc, OpBdnz:
		ins.RT, ins.RA, ins.RB = 0, 0, 0
		if ins.Op == OpB {
			ins.Imm &= 1
		}
	case OpNeg, OpExtsb, OpExtsh, OpExtsw, OpMtlr, OpMtctr:
		ins.RB = NoReg
	case OpMflr, OpMfctr:
		ins.RA, ins.RB = NoReg, NoReg
	}
	if ins.Op.Info().Compare {
		ins.RT = NoReg
	}
	return ins
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const idx = 50
	for _, ins := range encodableSamples() {
		word, err := Encode(&ins, idx)
		if err != nil {
			t.Fatalf("%s: encode: %v", ins.Disasm(), err)
		}
		got, err := Decode(word, idx)
		if err != nil {
			t.Fatalf("%s: decode %#08x: %v", ins.Disasm(), word, err)
		}
		want := normalizeForEncoding(ins)
		gotN := normalizeForEncoding(got)
		if gotN != want {
			t.Errorf("round trip mismatch:\n  in:  %+v\n  out: %+v", want, gotN)
		}
	}
}

func TestEncodeRejectsOutOfRangeImmediates(t *testing.T) {
	cases := []Instruction{
		{Op: OpAddi, RT: R3, RA: R4, Imm: 40000},
		{Op: OpAddi, RT: R3, RA: R4, Imm: -40000},
		{Op: OpAndi, RT: R3, RA: R4, Imm: -1},
		{Op: OpAndi, RT: R3, RA: R4, Imm: 0x10000},
		{Op: OpSldi, RT: R3, RA: R4, Imm: 64},
	}
	for _, ins := range cases {
		if _, err := Encode(&ins, 0); err == nil {
			t.Errorf("%s with imm %d: expected range error", ins.Op, ins.Imm)
		}
	}
}

func TestEncodeRejectsInvalidRegisters(t *testing.T) {
	bad := []Instruction{
		{Op: OpAdd, RT: CR0, RA: R4, RB: R5},
		{Op: OpCmpd, CRF: R3, RA: R4, RB: R5},
		{Op: OpIsel, RT: R3, RA: LR, RB: R5, CRF: CR0},
	}
	for _, ins := range bad {
		if _, err := Encode(&ins, 0); err == nil {
			t.Errorf("%+v: expected validation error", ins)
		}
	}
}

func TestBranchDisplacementRoundTrip(t *testing.T) {
	// Branches encode target-relative displacements; verify extremes.
	for _, idx := range []int{0, 1000, 1 << 20} {
		for _, target := range []int{idx - 8000, idx - 1, idx, idx + 1, idx + 8000} {
			ins := Instruction{Op: OpBc, CRF: CR0, Bit: CRGT, Want: true, Target: target}
			word, err := Encode(&ins, idx)
			if err != nil {
				t.Fatalf("encode bc @%d -> %d: %v", idx, target, err)
			}
			got, err := Decode(word, idx)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Target != target {
				t.Errorf("bc @%d: target %d round-tripped to %d", idx, target, got.Target)
			}
		}
	}
}

func TestBranchDisplacementRange(t *testing.T) {
	ins := Instruction{Op: OpBc, CRF: CR0, Bit: CRGT, Target: 1 << 14}
	if _, err := Encode(&ins, 0); err == nil {
		t.Error("bc displacement beyond 14 bits should not encode")
	}
	b := Instruction{Op: OpB, Target: 1 << 24}
	if _, err := Encode(&b, 0); err == nil {
		t.Error("b displacement beyond 24 bits should not encode")
	}
}

// TestEncodingsDistinct verifies no two sample instructions encode to
// the same word (the opcode space is unambiguous).
func TestEncodingsDistinct(t *testing.T) {
	seen := make(map[uint32]string)
	for _, ins := range encodableSamples() {
		word, err := Encode(&ins, 128)
		if err != nil {
			t.Fatalf("%s: %v", ins.Disasm(), err)
		}
		if prev, dup := seen[word]; dup {
			t.Errorf("%#08x encodes both %q and %q", word, prev, ins.Disasm())
		}
		seen[word] = ins.Disasm()
	}
}

// Property: any D-form immediate in range survives the round trip.
func TestQuickAddiImmediateRoundTrip(t *testing.T) {
	f := func(raw int16, rt, ra uint8) bool {
		ins := Instruction{Op: OpAddi, RT: Reg(rt % 32), RA: Reg(ra % 32), Imm: int64(raw)}
		word, err := Encode(&ins, 0)
		if err != nil {
			return false
		}
		got, err := Decode(word, 0)
		return err == nil && got.Imm == int64(raw) && got.RT == ins.RT && got.RA == ins.RA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rejected := 0
	for i := 0; i < 1000; i++ {
		w := rng.Uint32()
		if _, err := Decode(w, 0); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("decoder accepted 1000/1000 random words; opcode space should not be dense")
	}
}

func TestDisasmFormats(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: OpAddi, RT: R3, RA: R0, Imm: 5}, "li"},
		{Instruction{Op: OpMax, RT: R3, RA: R4, RB: R5}, "max"},
		{Instruction{Op: OpIsel, RT: R3, RA: R4, RB: R5, CRF: CR1, Bit: CRGT}, "isel"},
		{Instruction{Op: OpBc, CRF: CR0, Bit: CRGT, Want: true, Target: 7}, "bt"},
		{Instruction{Op: OpBc, CRF: CR0, Bit: CRGT, Want: false, Target: 7}, "bf"},
		{Instruction{Op: OpLwz, RT: R3, RA: R4, Imm: 8}, "8(r4)"},
	}
	for _, c := range cases {
		if got := c.ins.Disasm(); !strings.Contains(got, c.want) {
			t.Errorf("Disasm %+v = %q, want substring %q", c.ins, got, c.want)
		}
	}
}

func TestAsmLabelsAndFixups(t *testing.T) {
	a := NewAsm()
	a.Label("entry")
	a.Li(R3, 0)
	a.Branch(Instruction{Op: OpB}, "end") // forward reference
	a.Li(R3, 99)
	a.Label("end")
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["entry"] != 0 || p.Symbols["end"] != 3 {
		t.Errorf("symbols = %v", p.Symbols)
	}
	if p.Code[1].Target != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Code[1].Target)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.Branch(Instruction{Op: OpB}, "nowhere")
	if _, err := a.Finish(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestAsmDuplicateLabel(t *testing.T) {
	a := NewAsm()
	a.Label("x")
	a.Ret()
	a.Label("x")
	if _, err := a.Finish(); err == nil {
		t.Error("expected duplicate-label error")
	}
}

func TestProgramEncodeDecodeAll(t *testing.T) {
	a := NewAsm()
	a.Label("f")
	a.Li(R3, 10)
	a.Li(R4, 32)
	a.Emit(Instruction{Op: OpAdd, RT: R3, RA: R3, RB: R4})
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	words, err := p.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeAll(words)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("length mismatch %d != %d", q.Len(), p.Len())
	}
	for i := range p.Code {
		if normalizeForEncoding(q.Code[i]) != normalizeForEncoding(p.Code[i]) {
			t.Errorf("instruction %d mismatch: %+v vs %+v", i, p.Code[i], q.Code[i])
		}
	}
}

func TestProgramDisasmHasLabels(t *testing.T) {
	a := NewAsm()
	a.Label("main")
	a.Li(R3, 1)
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	text := p.Disasm()
	if !strings.Contains(text, "main:") || !strings.Contains(text, "li") {
		t.Errorf("disasm missing content:\n%s", text)
	}
}
