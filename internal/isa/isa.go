// Package isa defines a PowerPC-flavoured 64-bit instruction subset used
// throughout the simulator, together with the two instructions the paper
// proposes adding to the POWER ISA: the hypothetical single-cycle max
// instruction and the embedded-PowerPC isel (integer select).
//
// The subset covers the integer, compare, branch and load/store
// instructions that the dynamic-programming kernels of the BioPerf
// applications compile to.  Instructions have a fixed 32-bit encoding in
// PPC-style forms (D, X, I, B and A) implemented in encode.go; the
// functional semantics live in package machine and the timing behaviour
// in package cpu.
package isa

import "fmt"

// Reg identifies an architectural register.  General-purpose registers
// are R0..R31.  The eight 4-bit condition-register fields, the link
// register and the count register are modelled as additional registers
// so the timing model can track dependencies through them uniformly.
type Reg uint8

// Register name space.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31

	// CR0..CR7 are the eight condition-register fields.
	CR0
	CR1
	CR2
	CR3
	CR4
	CR5
	CR6
	CR7

	LR  // link register
	CTR // count register

	NumRegs // number of architectural registers

	// NoReg marks an unused register slot in an instruction.
	NoReg Reg = 0xFF
)

// SP is the stack pointer by PowerPC convention.
const SP = R1

// IsGPR reports whether r is a general-purpose register.
func (r Reg) IsGPR() bool { return r <= R31 }

// IsCR reports whether r is a condition-register field.
func (r Reg) IsCR() bool { return r >= CR0 && r <= CR7 }

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r <= R31:
		return fmt.Sprintf("r%d", uint8(r))
	case r.IsCR():
		return fmt.Sprintf("cr%d", uint8(r-CR0))
	case r == LR:
		return "lr"
	case r == CTR:
		return "ctr"
	case r == NoReg:
		return "-"
	}
	return fmt.Sprintf("reg%d", uint8(r))
}

// CRBit identifies one of the four bits within a condition-register
// field, following the PowerPC convention.
type CRBit uint8

// Condition-register bits within a field.
const (
	CRLT CRBit = iota // negative / less than
	CRGT              // positive / greater than
	CREQ              // zero / equal
	CRSO              // summary overflow (unused by the subset)
)

// String returns the conventional bit name.
func (b CRBit) String() string {
	switch b {
	case CRLT:
		return "lt"
	case CRGT:
		return "gt"
	case CREQ:
		return "eq"
	case CRSO:
		return "so"
	}
	return fmt.Sprintf("crbit%d", uint8(b))
}

// Op enumerates the operations of the subset.
type Op uint8

// Operations.  The comment gives the semantics in pseudo-code; rt, ra,
// rb are GPRs, imm is the sign-extended immediate, and crf the CR field.
const (
	OpInvalid Op = iota

	// Integer arithmetic and logical.
	OpAdd   // rt = ra + rb
	OpAddi  // rt = ra + imm (ra==R0 means literal 0, as in PowerPC li)
	OpAddis // rt = ra + (imm << 16)
	OpSubf  // rt = rb - ra
	OpNeg   // rt = -ra
	OpMulld // rt = ra * rb (low 64 bits)
	OpMulli // rt = ra * imm
	OpDivd  // rt = ra / rb (signed; rb==0 yields 0)
	OpAnd   // rt = ra & rb
	OpAndi  // rt = ra & uimm
	OpOr    // rt = ra | rb
	OpOri   // rt = ra | uimm
	OpXor   // rt = ra ^ rb
	OpXori  // rt = ra ^ uimm
	OpSld   // rt = ra << (rb & 127), 0 if shift >= 64
	OpSrd   // rt = ra >> (rb & 127) logical
	OpSrad  // rt = ra >> (rb & 127) arithmetic
	OpSldi  // rt = ra << imm
	OpSrdi  // rt = ra >> imm logical
	OpSradi // rt = ra >> imm arithmetic
	OpExtsb // rt = sign-extend byte(ra)
	OpExtsh // rt = sign-extend half(ra)
	OpExtsw // rt = sign-extend word(ra)

	// The paper's proposed predicated instructions.
	OpMax  // rt = max(signed ra, signed rb); single-cycle FXU op
	OpIsel // rt = (CR[crf] bit crbit set) ? ra : rb

	// Compares (set a CR field).
	OpCmpd   // crf <- signed compare(ra, rb)
	OpCmpdi  // crf <- signed compare(ra, imm)
	OpCmpld  // crf <- unsigned compare(ra, rb)
	OpCmpldi // crf <- unsigned compare(ra, uimm)

	// Branches.
	OpB    // unconditional relative branch (lk: bl)
	OpBc   // conditional branch on CR bit (taken if bit==want)
	OpBdnz // ctr--; branch if ctr != 0
	OpBlr  // branch to LR (function return)

	// Loads (all zero-extend unless noted; ea = ra + imm or ra + rb).
	OpLbz  // rt = mem8[ra+imm]
	OpLbzx // rt = mem8[ra+rb]
	OpLhz  // rt = mem16[ra+imm]
	OpLhzx // rt = mem16[ra+rb]
	OpLha  // rt = sign-extended mem16[ra+imm]
	OpLhax // rt = sign-extended mem16[ra+rb]
	OpLwz  // rt = mem32[ra+imm]
	OpLwzx // rt = mem32[ra+rb]
	OpLwa  // rt = sign-extended mem32[ra+imm]
	OpLwax // rt = sign-extended mem32[ra+rb]
	OpLd   // rt = mem64[ra+imm]
	OpLdx  // rt = mem64[ra+rb]

	// Stores.
	OpStb  // mem8[ra+imm] = rt
	OpStbx // mem8[ra+rb] = rt
	OpSth  // mem16[ra+imm] = rt
	OpSthx // mem16[ra+rb] = rt
	OpStw  // mem32[ra+imm] = rt
	OpStwx // mem32[ra+rb] = rt
	OpStd  // mem64[ra+imm] = rt
	OpStdx // mem64[ra+rb] = rt

	// Miscellaneous.
	OpMtlr  // LR = ra
	OpMflr  // rt = LR
	OpMtctr // CTR = ra
	OpMfctr // rt = CTR
	OpNop   // no operation

	NumOps // number of operations
)

// Class is the functional-unit class an operation executes in, mirroring
// the POWER5 execution resources the paper discusses.
type Class uint8

// Functional-unit classes.
const (
	ClassFXU Class = iota // fixed-point unit
	ClassLSU              // load/store unit
	ClassBRU              // branch unit
	ClassCRU              // condition-register unit (mtlr/mflr etc.)
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassFXU:
		return "FXU"
	case ClassLSU:
		return "LSU"
	case ClassBRU:
		return "BRU"
	case ClassCRU:
		return "CRU"
	}
	return "???"
}

// Info carries the static metadata of an operation.
type Info struct {
	Name    string // assembler mnemonic
	Class   Class  // functional unit class
	Latency int    // execution latency in cycles
	Load    bool   // reads memory
	Store   bool   // writes memory
	Branch  bool   // changes control flow
	CondBr  bool   // conditional branch
	Compare bool   // writes a CR field
}

var opInfo = [NumOps]Info{
	OpInvalid: {Name: "invalid", Class: ClassFXU, Latency: 1},

	OpAdd:   {Name: "add", Class: ClassFXU, Latency: 1},
	OpAddi:  {Name: "addi", Class: ClassFXU, Latency: 1},
	OpAddis: {Name: "addis", Class: ClassFXU, Latency: 1},
	OpSubf:  {Name: "subf", Class: ClassFXU, Latency: 1},
	OpNeg:   {Name: "neg", Class: ClassFXU, Latency: 1},
	OpMulld: {Name: "mulld", Class: ClassFXU, Latency: 5},
	OpMulli: {Name: "mulli", Class: ClassFXU, Latency: 5},
	OpDivd:  {Name: "divd", Class: ClassFXU, Latency: 20},
	OpAnd:   {Name: "and", Class: ClassFXU, Latency: 1},
	OpAndi:  {Name: "andi.", Class: ClassFXU, Latency: 1},
	OpOr:    {Name: "or", Class: ClassFXU, Latency: 1},
	OpOri:   {Name: "ori", Class: ClassFXU, Latency: 1},
	OpXor:   {Name: "xor", Class: ClassFXU, Latency: 1},
	OpXori:  {Name: "xori", Class: ClassFXU, Latency: 1},
	OpSld:   {Name: "sld", Class: ClassFXU, Latency: 1},
	OpSrd:   {Name: "srd", Class: ClassFXU, Latency: 1},
	OpSrad:  {Name: "srad", Class: ClassFXU, Latency: 1},
	OpSldi:  {Name: "sldi", Class: ClassFXU, Latency: 1},
	OpSrdi:  {Name: "srdi", Class: ClassFXU, Latency: 1},
	OpSradi: {Name: "sradi", Class: ClassFXU, Latency: 1},
	OpExtsb: {Name: "extsb", Class: ClassFXU, Latency: 1},
	OpExtsh: {Name: "extsh", Class: ClassFXU, Latency: 1},
	OpExtsw: {Name: "extsw", Class: ClassFXU, Latency: 1},

	OpMax:  {Name: "max", Class: ClassFXU, Latency: 1},
	OpIsel: {Name: "isel", Class: ClassFXU, Latency: 1},

	OpCmpd:   {Name: "cmpd", Class: ClassFXU, Latency: 1, Compare: true},
	OpCmpdi:  {Name: "cmpdi", Class: ClassFXU, Latency: 1, Compare: true},
	OpCmpld:  {Name: "cmpld", Class: ClassFXU, Latency: 1, Compare: true},
	OpCmpldi: {Name: "cmpldi", Class: ClassFXU, Latency: 1, Compare: true},

	OpB:    {Name: "b", Class: ClassBRU, Latency: 1, Branch: true},
	OpBc:   {Name: "bc", Class: ClassBRU, Latency: 1, Branch: true, CondBr: true},
	OpBdnz: {Name: "bdnz", Class: ClassBRU, Latency: 1, Branch: true, CondBr: true},
	OpBlr:  {Name: "blr", Class: ClassBRU, Latency: 1, Branch: true},

	OpLbz:  {Name: "lbz", Class: ClassLSU, Latency: 2, Load: true},
	OpLbzx: {Name: "lbzx", Class: ClassLSU, Latency: 2, Load: true},
	OpLhz:  {Name: "lhz", Class: ClassLSU, Latency: 2, Load: true},
	OpLhzx: {Name: "lhzx", Class: ClassLSU, Latency: 2, Load: true},
	OpLha:  {Name: "lha", Class: ClassLSU, Latency: 2, Load: true},
	OpLhax: {Name: "lhax", Class: ClassLSU, Latency: 2, Load: true},
	OpLwz:  {Name: "lwz", Class: ClassLSU, Latency: 2, Load: true},
	OpLwzx: {Name: "lwzx", Class: ClassLSU, Latency: 2, Load: true},
	OpLwa:  {Name: "lwa", Class: ClassLSU, Latency: 2, Load: true},
	OpLwax: {Name: "lwax", Class: ClassLSU, Latency: 2, Load: true},
	OpLd:   {Name: "ld", Class: ClassLSU, Latency: 2, Load: true},
	OpLdx:  {Name: "ldx", Class: ClassLSU, Latency: 2, Load: true},

	OpStb:  {Name: "stb", Class: ClassLSU, Latency: 1, Store: true},
	OpStbx: {Name: "stbx", Class: ClassLSU, Latency: 1, Store: true},
	OpSth:  {Name: "sth", Class: ClassLSU, Latency: 1, Store: true},
	OpSthx: {Name: "sthx", Class: ClassLSU, Latency: 1, Store: true},
	OpStw:  {Name: "stw", Class: ClassLSU, Latency: 1, Store: true},
	OpStwx: {Name: "stwx", Class: ClassLSU, Latency: 1, Store: true},
	OpStd:  {Name: "std", Class: ClassLSU, Latency: 1, Store: true},
	OpStdx: {Name: "stdx", Class: ClassLSU, Latency: 1, Store: true},

	OpMtlr:  {Name: "mtlr", Class: ClassCRU, Latency: 1},
	OpMflr:  {Name: "mflr", Class: ClassCRU, Latency: 1},
	OpMtctr: {Name: "mtctr", Class: ClassCRU, Latency: 1},
	OpMfctr: {Name: "mfctr", Class: ClassCRU, Latency: 1},
	OpNop:   {Name: "nop", Class: ClassFXU, Latency: 1},
}

// Info returns the static metadata for op.
func (op Op) Info() Info {
	if op >= NumOps {
		return opInfo[OpInvalid]
	}
	return opInfo[op]
}

// String returns the assembler mnemonic.
func (op Op) String() string { return op.Info().Name }

// Instruction is one decoded instruction of the subset.  Fields that a
// given operation does not use are left at their zero values (or NoReg).
type Instruction struct {
	Op   Op
	RT   Reg   // target register (source for stores)
	RA   Reg   // first source
	RB   Reg   // second source (indexed addressing)
	CRF  Reg   // condition register field (CR0..CR7) for cmp/bc/isel
	Bit  CRBit // condition bit within CRF for bc/isel
	Want bool  // bc: branch taken when bit == Want
	Imm  int64 // immediate / displacement
	// Target is the branch target expressed as an instruction index
	// within the program (not a byte address).  Filled in by the
	// assembler after label resolution.
	Target int
}

// Uses appends the registers the instruction reads to dst and returns it.
func (ins *Instruction) Uses(dst []Reg) []Reg {
	switch ins.Op {
	case OpAdd, OpSubf, OpMulld, OpDivd, OpAnd, OpOr, OpXor,
		OpSld, OpSrd, OpSrad, OpMax, OpCmpd, OpCmpld:
		dst = append(dst, ins.RA, ins.RB)
	case OpAddi, OpAddis:
		if ins.RA != R0 { // ra==0 means literal zero (li/lis)
			dst = append(dst, ins.RA)
		}
	case OpMulli, OpAndi, OpOri, OpXori, OpSldi, OpSrdi, OpSradi,
		OpNeg, OpExtsb, OpExtsh, OpExtsw, OpCmpdi, OpCmpldi,
		OpMtlr, OpMtctr:
		dst = append(dst, ins.RA)
	case OpIsel:
		dst = append(dst, ins.RA, ins.RB, ins.CRF)
	case OpBc:
		dst = append(dst, ins.CRF)
	case OpBdnz:
		dst = append(dst, CTR)
	case OpBlr:
		dst = append(dst, LR)
	case OpMflr:
		dst = append(dst, LR)
	case OpMfctr:
		dst = append(dst, CTR)
	case OpLbz, OpLhz, OpLha, OpLwz, OpLwa, OpLd:
		dst = append(dst, ins.RA)
	case OpLbzx, OpLhzx, OpLhax, OpLwzx, OpLwax, OpLdx:
		dst = append(dst, ins.RA, ins.RB)
	case OpStb, OpSth, OpStw, OpStd:
		dst = append(dst, ins.RT, ins.RA)
	case OpStbx, OpSthx, OpStwx, OpStdx:
		dst = append(dst, ins.RT, ins.RA, ins.RB)
	}
	return dst
}

// Defs appends the registers the instruction writes to dst and returns it.
func (ins *Instruction) Defs(dst []Reg) []Reg {
	switch ins.Op {
	case OpAdd, OpAddi, OpAddis, OpSubf, OpNeg, OpMulld, OpMulli,
		OpDivd, OpAnd, OpAndi, OpOr, OpOri, OpXor, OpXori,
		OpSld, OpSrd, OpSrad, OpSldi, OpSrdi, OpSradi,
		OpExtsb, OpExtsh, OpExtsw, OpMax, OpIsel,
		OpLbz, OpLbzx, OpLhz, OpLhzx, OpLha, OpLhax,
		OpLwz, OpLwzx, OpLwa, OpLwax, OpLd, OpLdx,
		OpMflr, OpMfctr:
		dst = append(dst, ins.RT)
	case OpCmpd, OpCmpdi, OpCmpld, OpCmpldi:
		dst = append(dst, ins.CRF)
	case OpMtlr:
		dst = append(dst, LR)
	case OpMtctr:
		dst = append(dst, CTR)
	case OpBdnz:
		dst = append(dst, CTR)
	case OpB:
		if ins.ImmLK() {
			dst = append(dst, LR)
		}
	}
	return dst
}

// ImmLK reports whether a branch instruction sets the link register.
// Encoded in the low bit of Imm for OpB (mirroring the PowerPC LK bit).
func (ins *Instruction) ImmLK() bool { return ins.Op == OpB && ins.Imm&1 != 0 }

// IsBranch reports whether the instruction redirects control flow.
func (ins *Instruction) IsBranch() bool { return ins.Op.Info().Branch }

// IsCondBranch reports whether the instruction is a conditional branch.
func (ins *Instruction) IsCondBranch() bool { return ins.Op.Info().CondBr }

// IsLoad reports whether the instruction reads memory.
func (ins *Instruction) IsLoad() bool { return ins.Op.Info().Load }

// IsStore reports whether the instruction writes memory.
func (ins *Instruction) IsStore() bool { return ins.Op.Info().Store }

// Class returns the functional-unit class of the instruction.
func (ins *Instruction) Class() Class { return ins.Op.Info().Class }

// Validate checks the structural well-formedness of the instruction and
// returns a descriptive error when a field is out of range for the
// operation.
func (ins *Instruction) Validate() error {
	info := ins.Op.Info()
	if ins.Op == OpInvalid || ins.Op >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", ins.Op)
	}
	checkGPR := func(role string, r Reg) error {
		if !r.IsGPR() {
			return fmt.Errorf("isa: %s: %s operand %s is not a GPR", info.Name, role, r)
		}
		return nil
	}
	switch ins.Op {
	case OpCmpd, OpCmpdi, OpCmpld, OpCmpldi:
		if !ins.CRF.IsCR() {
			return fmt.Errorf("isa: %s: CRF %s is not a CR field", info.Name, ins.CRF)
		}
		return checkGPR("ra", ins.RA)
	case OpBc:
		if !ins.CRF.IsCR() {
			return fmt.Errorf("isa: %s: CRF %s is not a CR field", info.Name, ins.CRF)
		}
		if ins.Bit > CRSO {
			return fmt.Errorf("isa: %s: CR bit %d out of range", info.Name, ins.Bit)
		}
		return nil
	case OpIsel:
		if !ins.CRF.IsCR() {
			return fmt.Errorf("isa: %s: CRF %s is not a CR field", info.Name, ins.CRF)
		}
		if err := checkGPR("rt", ins.RT); err != nil {
			return err
		}
		if err := checkGPR("ra", ins.RA); err != nil {
			return err
		}
		return checkGPR("rb", ins.RB)
	case OpB, OpBdnz, OpBlr, OpNop:
		return nil
	case OpMtlr, OpMtctr:
		return checkGPR("ra", ins.RA)
	case OpMflr, OpMfctr:
		return checkGPR("rt", ins.RT)
	}
	if info.Store || info.Load {
		if err := checkGPR("rt", ins.RT); err != nil {
			return err
		}
		return checkGPR("ra", ins.RA)
	}
	if err := checkGPR("rt", ins.RT); err != nil {
		return err
	}
	return nil
}
