package compiler

import (
	"fmt"
	"sort"

	"bioperf5/internal/ir"
	"bioperf5/internal/isa"
)

// liveness computes per-block live-in/live-out sets of virtual
// registers by iterating the standard backward dataflow to a fixpoint.
type liveness struct {
	in, out map[*ir.Block]map[ir.Reg]bool
}

func computeLiveness(f *ir.Func) *liveness {
	lv := &liveness{
		in:  make(map[*ir.Block]map[ir.Reg]bool, len(f.Blocks)),
		out: make(map[*ir.Block]map[ir.Reg]bool, len(f.Blocks)),
	}
	use := make(map[*ir.Block]map[ir.Reg]bool, len(f.Blocks))
	def := make(map[*ir.Block]map[ir.Reg]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		u, d := map[ir.Reg]bool{}, map[ir.Reg]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses(nil) {
				if !d[r] {
					u[r] = true
				}
			}
			if in.Dst != ir.NoReg {
				d[in.Dst] = true
			}
		}
		switch b.Term.Kind {
		case ir.TermCondBr:
			for _, r := range []ir.Reg{b.Term.A, b.Term.B} {
				if r != ir.NoReg && !d[r] {
					u[r] = true
				}
			}
		case ir.TermRet:
			if b.Term.A != ir.NoReg && !d[b.Term.A] {
				u[b.Term.A] = true
			}
		}
		use[b], def[b] = u, d
		lv.in[b] = map[ir.Reg]bool{}
		lv.out[b] = map[ir.Reg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.out[b]
			for _, s := range b.Succs() {
				for r := range lv.in[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.in[b]
			for r := range use[b] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !def[b][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// interval is a conservative single live range of a virtual register
// over the linearized instruction positions.
type interval struct {
	reg        ir.Reg
	start, end int
	uses       int     // static use count
	weight     float64 // loop-depth-scaled spill cost (higher = keep)
}

// allocation maps virtual registers to physical registers or spill
// slots.
type allocation struct {
	phys  map[ir.Reg]isa.Reg
	slots map[ir.Reg]int // spill slot index
}

// allocatable is the physical register pool in allocation-preference
// order.  R0 (zero semantics in addi), R1 (stack pointer), R2 and R13
// (ABI reserved), and R11/R12 (codegen scratch) are excluded.  High
// registers come first so the low argument registers (r3..r10) remain
// untouched unless pressure demands them; this keeps the entry-block
// argument moves hazard-free.
var allocatable = []isa.Reg{
	isa.R14, isa.R15, isa.R16, isa.R17, isa.R18, isa.R19, isa.R20, isa.R21,
	isa.R22, isa.R23, isa.R24, isa.R25, isa.R26, isa.R27, isa.R28, isa.R29,
	isa.R30, isa.R31,
	isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9, isa.R10,
	// R2 and R13 are TOC/thread pointers under the ELF ABI, but these
	// standalone kernels have neither, so the pool reclaims them last.
	isa.R2, isa.R13,
}

// buildIntervals linearizes blocks in layout order and derives one
// conservative interval per virtual register.
func buildIntervals(f *ir.Func, lv *liveness) []interval {
	type span struct {
		start, end int
		seen       bool
		uses       int
		weight     float64
	}
	spans := make([]span, f.NumRegs())
	depthCost := func(d int) float64 {
		if d > 6 {
			d = 6
		}
		c := 1.0
		for ; d > 0; d-- {
			c *= 10
		}
		return c
	}
	curCost := 1.0
	touch := func(r ir.Reg, pos int, isUse bool) {
		if r == ir.NoReg {
			return
		}
		s := &spans[r]
		if !s.seen {
			s.seen = true
			s.start, s.end = pos, pos
		} else {
			if pos < s.start {
				s.start = pos
			}
			if pos > s.end {
				s.end = pos
			}
		}
		s.weight += curCost
		if isUse {
			s.uses++
		}
	}
	pos := 0
	for _, b := range f.Blocks {
		curCost = depthCost(b.Depth)
		blockStart := pos
		for r := range lv.in[b] {
			touch(r, blockStart, false)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, u := range in.Uses(nil) {
				touch(u, pos, true)
			}
			touch(in.Dst, pos, false)
			pos++
		}
		// Terminator occupies one position.
		if b.Term.Kind == ir.TermCondBr {
			touch(b.Term.A, pos, true)
			touch(b.Term.B, pos, true)
		}
		if b.Term.Kind == ir.TermRet && b.Term.A != ir.NoReg {
			touch(b.Term.A, pos, true)
		}
		pos++
		blockEnd := pos - 1
		for r := range lv.out[b] {
			touch(r, blockEnd, false)
		}
	}
	var out []interval
	for r := range spans {
		if spans[r].seen {
			out = append(out, interval{reg: ir.Reg(r), start: spans[r].start,
				end: spans[r].end, uses: spans[r].uses, weight: spans[r].weight})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].reg < out[j].reg
	})
	return out
}

// linearScan performs Poletto/Sarkar linear-scan allocation with
// furthest-end spilling.
func linearScan(f *ir.Func) (*allocation, error) {
	lv := computeLiveness(f)
	ivals := buildIntervals(f, lv)
	alloc := &allocation{phys: map[ir.Reg]isa.Reg{}, slots: map[ir.Reg]int{}}

	free := make([]isa.Reg, len(allocatable))
	copy(free, allocatable)
	type active struct {
		iv   interval
		phys isa.Reg
	}
	var act []active

	expire := func(now int) {
		kept := act[:0]
		for _, a := range act {
			if a.iv.end < now {
				free = append(free, a.phys)
			} else {
				kept = append(kept, a)
			}
		}
		act = kept
	}
	nextSlot := 0
	for _, iv := range ivals {
		expire(iv.start)
		if len(free) > 0 {
			// Pop from the front to honour preference order.
			p := free[0]
			free = free[1:]
			alloc.phys[iv.reg] = p
			act = append(act, active{iv: iv, phys: p})
			continue
		}
		// Spill an active interval that outlives the new one (so the
		// freed register keeps serving later intervals — the classic
		// linear-scan progress rule), choosing the one with the lowest
		// loop-depth-weighted cost so inner-loop values stay in
		// registers while function-scope constants and pointers go to
		// the stack.  If nothing outlives it, spill the new interval.
		victim := -1
		for i, a := range act {
			if a.iv.end <= iv.end {
				continue
			}
			if victim < 0 || a.iv.weight < act[victim].iv.weight {
				victim = i
			}
		}
		if victim >= 0 && act[victim].iv.weight < iv.weight {
			v := act[victim]
			alloc.slots[v.iv.reg] = nextSlot
			nextSlot++
			delete(alloc.phys, v.iv.reg)
			alloc.phys[iv.reg] = v.phys
			act[victim] = active{iv: iv, phys: v.phys}
		} else {
			alloc.slots[iv.reg] = nextSlot
			nextSlot++
		}
	}
	if nextSlot > 2000 {
		return nil, fmt.Errorf("compiler: %s: unreasonable spill pressure (%d slots)", f.Name, nextSlot)
	}
	return alloc, nil
}
