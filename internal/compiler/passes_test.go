package compiler

import (
	"testing"

	"bioperf5/internal/ir"
	"bioperf5/internal/mem"
)

// interp is a shorthand for running a function under the IR interpreter.
func interp(t *testing.T, f *ir.Func, args ...int64) int64 {
	t.Helper()
	v, err := ir.Interp(f, mem.New(), args, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHoistConstsMovesLoopConstants(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	n := b.Arg(0)
	acc := b.Var(b.Const(0))
	b.ForRange(b.Const(0), n, 1, func(i ir.Reg) {
		b.Assign(acc, b.Add(acc, b.Const(7)))
	})
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := interp(t, f, 5)

	hoistConsts(f)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// All constants now live in the entry block.
	for bi, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpConst && bi != 0 {
				t.Errorf("const survives in non-entry block %s", blk.Name)
			}
		}
	}
	if after := interp(t, f, 5); after != before {
		t.Errorf("hoistConsts changed semantics: %d -> %d", before, after)
	}
	// Deduplication: the value 7 appears exactly once as a const.
	sevens := 0
	for i := range f.Entry().Instrs {
		in := &f.Entry().Instrs[i]
		if in.Op == ir.OpConst && in.Imm == 7 {
			sevens++
		}
	}
	if sevens != 1 {
		t.Errorf("const 7 materialized %d times", sevens)
	}
}

func TestHoistArgsCanonicalizes(t *testing.T) {
	b := ir.NewBuilder("f", 2)
	// Read arg 1 twice, in a non-entry position.
	x := b.Var(b.Const(0))
	b.If(ir.CondOf(ir.CmpGT, b.Arg(0), b.Const(0)), func() {
		b.Assign(x, b.Arg(1))
	})
	y := b.Arg(1)
	b.Ret(b.Add(x, y))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := interp(t, f, 1, 21)

	hoistArgs(f)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	args := 0
	for bi, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpArg {
				args++
				if bi != 0 {
					t.Error("arg read outside entry")
				}
			}
		}
	}
	if args != 2 {
		t.Errorf("%d canonical arg reads, want 2 (deduplicated)", args)
	}
	if f.Entry().Instrs[0].Op != ir.OpArg {
		t.Error("args not at the very start of entry")
	}
	if after := interp(t, f, 1, 21); after != before {
		t.Errorf("hoistArgs changed semantics: %d -> %d", before, after)
	}
}

func TestCopyPropCollapsesChains(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	x := b.Arg(0)
	c1 := b.Var(x)  // copy
	c2 := b.Var(c1) // copy of copy
	b.Ret(b.Add(c2, c2))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	copyProp(f)
	// The add now reads the argument register directly.
	var add *ir.Instr
	for i := range f.Entry().Instrs {
		if f.Entry().Instrs[i].Op == ir.OpAdd {
			add = &f.Entry().Instrs[i]
		}
	}
	if add == nil {
		t.Fatal("no add found")
	}
	if add.A != x || add.B != x {
		t.Errorf("copy chain not collapsed: add reads %s,%s want %s", add.A, add.B, x)
	}
}

func TestCopyPropRespectsRedefinition(t *testing.T) {
	// y = x; x = 99; ret y  — y must NOT be forwarded to the new x.
	b := ir.NewBuilder("f", 1)
	x := b.Var(b.Arg(0))
	y := b.Var(x)
	b.Assign(x, b.Const(99))
	b.Ret(y)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	copyProp(f)
	if got := interp(t, f, 7); got != 7 {
		t.Errorf("redefinition broke copyProp: got %d, want 7", got)
	}
}

func TestSinkCopiesCoalesces(t *testing.T) {
	b := ir.NewBuilder("f", 2)
	x, y := b.Arg(0), b.Arg(1)
	acc := b.Var(x)
	b.Assign(acc, b.Max(acc, y)) // t = max(acc,y); acc = t
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := interp(t, f, 3, 9)
	sinkCopies(f)
	// The copy after max is gone; max writes acc directly.
	maxes, copies := 0, 0
	for i := range f.Entry().Instrs {
		switch f.Entry().Instrs[i].Op {
		case ir.OpMax:
			maxes++
			if f.Entry().Instrs[i].Dst != acc {
				t.Error("max does not write the accumulator directly")
			}
		case ir.OpCopy:
			copies++
		}
	}
	if maxes != 1 {
		t.Fatalf("maxes = %d", maxes)
	}
	if copies != 2 { // the Var(x) init copies of acc and... arg canon not run; acc init only
		t.Logf("copies remaining = %d", copies)
	}
	if after := interp(t, f, 3, 9); after != before {
		t.Errorf("sinkCopies changed semantics: %d -> %d", before, after)
	}
}

func TestSinkCopiesRefusesMultiUse(t *testing.T) {
	// t = add(x,y); acc = t; ret t+acc — t has two uses, cannot sink.
	f := &ir.Func{Name: "f", NArgs: 2}
	blk := f.NewBlock("entry")
	a0, a1 := f.NewReg(), f.NewReg()
	tr, acc, sum := f.NewReg(), f.NewReg(), f.NewReg()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpArg, Dst: a0, Imm: 0},
		{Op: ir.OpArg, Dst: a1, Imm: 1},
		{Op: ir.OpAdd, Dst: tr, A: a0, B: a1},
		{Op: ir.OpCopy, Dst: acc, A: tr},
		{Op: ir.OpAdd, Dst: sum, A: tr, B: acc},
	}
	blk.Term = ir.Term{Kind: ir.TermRet, A: sum}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	want := interp(t, f, 4, 5)
	sinkCopies(f)
	if got := interp(t, f, 4, 5); got != want {
		t.Errorf("multi-use sink broke semantics: %d -> %d", want, got)
	}
}

func TestFoldImmediatesRewritesOps(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	x := b.Arg(0)
	v := b.Add(x, b.Const(5))       // -> addi
	v = b.Sub(v, b.Const(2))        // -> addi -2
	v = b.Mul(v, b.Const(3))        // -> mulli
	v = b.And(v, b.Const(0xFF))     // -> andi
	v = b.Or(v, b.Const(0x10))      // -> ori
	v = b.Xor(v, b.Const(0x3))      // -> xori
	v = b.Shl(v, b.Const(2))        // -> sldi
	v = b.Shr(v, b.Const(1))        // -> srdi
	v = b.Sar(v, b.Const(1))        // -> sradi
	big := b.Add(v, b.Const(1<<20)) // immediate too large: stays reg-reg
	b.Ret(big)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := interp(t, f, 11)
	foldImmediates(f)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	ops := CountOps(f)
	for _, o := range []ir.Op{ir.OpAddImm, ir.OpMulImm, ir.OpAndImm,
		ir.OpOrImm, ir.OpXorImm, ir.OpShlImm, ir.OpShrImm, ir.OpSarImm} {
		if ops[o] == 0 {
			t.Errorf("no %s produced", o)
		}
	}
	if ops[ir.OpAddImm] != 2 { // 5 and -2
		t.Errorf("addimm = %d, want 2", ops[ir.OpAddImm])
	}
	if ops[ir.OpAdd] != 1 { // the 1<<20 case survives
		t.Errorf("reg-reg add = %d, want 1 (out-of-range immediate)", ops[ir.OpAdd])
	}
	if got := interp(t, f, 11); got != want {
		t.Errorf("foldImmediates changed semantics: %d -> %d", want, got)
	}
}

func TestFoldImmediatesCondBr(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("f", 1)
		x := b.Arg(0)
		r := b.Var(b.Const(0))
		b.If(ir.CondOf(ir.CmpGT, x, b.Const(10)), func() {
			b.Assign(r, b.Const(1))
		})
		// Mirrored form: const on the left.
		b.If(ir.CondOf(ir.CmpLT, b.Const(3), x), func() {
			b.Assign(r, b.Add(r, b.Const(2)))
		})
		b.Ret(r)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, in := range []int64{0, 5, 11} {
		want := interp(t, build(), in)
		g := build()
		foldImmediates(g)
		if err := g.Verify(); err != nil {
			t.Fatal(err)
		}
		if got := interp(t, g, in); got != want {
			t.Errorf("f(%d): %d -> %d after folding", in, want, got)
		}
	}
	f := build()
	foldImmediates(f)
	immBranches := 0
	for _, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermCondBr && blk.Term.B == ir.NoReg {
			immBranches++
		}
	}
	if immBranches != 2 {
		t.Errorf("%d immediate compares, want 2", immBranches)
	}
}

func TestMirrorCmp(t *testing.T) {
	cases := map[ir.CmpKind]ir.CmpKind{
		ir.CmpLT: ir.CmpGT, ir.CmpGT: ir.CmpLT,
		ir.CmpLE: ir.CmpGE, ir.CmpGE: ir.CmpLE,
		ir.CmpEQ: ir.CmpEQ, ir.CmpNE: ir.CmpNE,
	}
	for in, want := range cases {
		if got := mirrorCmp(in); got != want {
			t.Errorf("mirror(%s) = %s, want %s", in, got, want)
		}
		// a OP b == b mirror(OP) a for all values.
		for _, a := range []int64{-1, 0, 1} {
			for _, b := range []int64{-1, 0, 1} {
				if in.Eval(a, b) != mirrorCmp(in).Eval(b, a) {
					t.Errorf("mirror law broken for %s at (%d,%d)", in, a, b)
				}
			}
		}
	}
}

func TestDCERemovesDeadChains(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	x := b.Arg(0)
	dead1 := b.Add(x, b.Const(1))
	_ = b.Mul(dead1, dead1) // transitively dead
	b.Ret(x)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dce(f)
	ops := CountOps(f)
	if ops[ir.OpAdd] != 0 || ops[ir.OpMul] != 0 {
		t.Errorf("dead chain survives: %v", ops)
	}
	if got := interp(t, f, 42); got != 42 {
		t.Errorf("dce broke semantics: %d", got)
	}
}

func TestDCEKeepsStores(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	p := b.Arg(0)
	b.Store(ir.Mem64, p, 0, b.Const(9))
	b.Ret(p)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dce(f)
	if CountOps(f)[ir.OpStore] != 1 {
		t.Error("dce removed a store")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	b := ir.NewBuilder("f", 1)
	b.Ret(b.Arg(0))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	orphan := f.NewBlock("orphan")
	orphan.Term = ir.Term{Kind: ir.TermRet, A: ir.NoReg}
	removeUnreachable(f)
	for _, blk := range f.Blocks {
		if blk.Name == "orphan" {
			t.Error("unreachable block survived")
		}
	}
	// IDs are re-densified.
	for i, blk := range f.Blocks {
		if blk.ID != i {
			t.Errorf("block %s has ID %d at index %d", blk.Name, blk.ID, i)
		}
	}
}

func TestIfConvertNestedLoopsUntouchedStructure(t *testing.T) {
	// If-conversion must not break loop back-edges.
	b := ir.NewBuilder("f", 1)
	n := b.Arg(0)
	acc := b.Var(b.Const(0))
	b.ForRange(b.Const(0), n, 1, func(i ir.Reg) {
		b.If(ir.CondOf(ir.CmpGT, i, acc), func() {
			b.Assign(acc, i)
		})
	})
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := interp(t, f, 10)
	if n := IfConvert(f, DefaultIfConvOptions()); n != 1 {
		t.Fatalf("converted %d", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := interp(t, f, 10); got != want {
		t.Errorf("loop hammock conversion broke semantics: %d -> %d", want, got)
	}
}

func TestLinearScanKeepsHotValuesInRegisters(t *testing.T) {
	// A function with a hot inner loop plus many cold outer values:
	// the loop-depth weighting must spill the cold ones.
	b := ir.NewBuilder("f", 1)
	n := b.Arg(0)
	var cold []ir.Reg
	for i := 0; i < 30; i++ {
		cold = append(cold, b.AddI(n, int64(1000+i)))
	}
	acc := b.Var(b.Const(0))
	b.ForRange(b.Const(0), n, 1, func(i ir.Reg) {
		b.Assign(acc, b.Add(acc, i))
	})
	// Consume the cold values after the loop so they stay live across it.
	sum := acc
	for _, c := range cold {
		sum = b.Add(sum, c)
	}
	b.Ret(sum)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hoistConsts(f)
	hoistArgs(f)
	copyProp(f)
	foldImmediates(f)
	sinkCopies(f)
	dce(f)
	alloc, err := linearScan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.slots) == 0 {
		t.Fatal("expected spills under this pressure")
	}
	// The loop accumulator and induction variable must not be spilled.
	lv := computeLiveness(f)
	_ = lv
	var loopBlk *ir.Block
	for _, blk := range f.Blocks {
		if blk.Depth > 0 && len(blk.Instrs) > 0 {
			loopBlk = blk
		}
	}
	if loopBlk == nil {
		t.Fatal("no loop body found")
	}
	for i := range loopBlk.Instrs {
		in := &loopBlk.Instrs[i]
		if in.Dst != ir.NoReg {
			if _, spilled := alloc.slots[in.Dst]; spilled {
				t.Errorf("hot loop value %s spilled", in.Dst)
			}
		}
	}
}
