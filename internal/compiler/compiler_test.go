package compiler

import (
	"math/rand"
	"testing"

	"bioperf5/internal/ir"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
)

// targets lists the four ISA variants the paper's experiments compile
// for.
var targets = map[string]Target{
	"stock":    {},
	"isel":     {HasISel: true},
	"max":      {HasMax: true},
	"max+isel": {HasMax: true, HasISel: true},
}

// optionSets pairs target-independent pipeline options with a name.
var optionSets = map[string]Options{
	"plain":     {},
	"ifconvert": DefaultOptions(),
}

// checkAllVariants compiles the function produced by build under every
// target/options combination, runs it on the functional machine, and
// compares against the IR interpreter (ground truth).  initMem seeds
// identical memory contents for both executions.
func checkAllVariants(t *testing.T, build func() *ir.Func, args []int64, initMem func(*mem.Memory)) {
	t.Helper()
	refMem := mem.New()
	if initMem != nil {
		initMem(refMem)
	}
	refFunc := build()
	want, err := ir.Interp(refFunc, refMem, args, 50_000_000)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	for tname, tgt := range targets {
		for oname, opts := range optionSets {
			f := build()
			prog, _, err := Compile(f, tgt, opts)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", tname, oname, err)
			}
			m := mem.New()
			if initMem != nil {
				initMem(m)
			}
			mach := machine.New(prog, m)
			uargs := make([]uint64, len(args))
			for i, a := range args {
				uargs[i] = uint64(a)
			}
			got, err := mach.Call(f.Name, 50_000_000, uargs...)
			if err != nil {
				t.Fatalf("%s/%s: run: %v\n%s", tname, oname, err, prog.Disasm())
			}
			if int64(got) != want {
				t.Errorf("%s/%s: got %d, want %d\nIR:\n%s\nasm:\n%s",
					tname, oname, int64(got), want, f.String(), prog.Disasm())
			}
		}
	}
}

func TestCompileStraightLine(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("f", 2)
		x, y := b.Arg(0), b.Arg(1)
		b.Ret(b.Add(b.MulI(x, 7), b.SubI(y, 3)))
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	checkAllVariants(t, build, []int64{11, 5}, nil)
	checkAllVariants(t, build, []int64{-4, 0}, nil)
}

func TestCompileMaxIdiom(t *testing.T) {
	// The paper's core hammock: if (a < b) a = b.
	build := func() *ir.Func {
		b := ir.NewBuilder("maxer", 2)
		x := b.Var(b.Arg(0))
		y := b.Arg(1)
		b.If(ir.CondOf(ir.CmpLT, x, y), func() {
			b.Assign(x, y)
		})
		b.Ret(x)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, args := range [][]int64{{3, 9}, {9, 3}, {-5, -5}, {-9, -3}} {
		checkAllVariants(t, build, args, nil)
	}
}

func TestCompileLoopWithHammock(t *testing.T) {
	// Running maximum over a memory array: the dropgsw/forward_pass
	// shape in miniature.
	const base = 0x4000
	const n = 64
	initMem := func(m *mem.Memory) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < n; i++ {
			m.WriteInt(base+uint64(4*i), 4, int64(int32(rng.Intn(2000)-1000)))
		}
	}
	build := func() *ir.Func {
		b := ir.NewBuilder("runmax", 1)
		p := b.Arg(0)
		best := b.Var(b.Const(-1 << 30))
		b.ForRange(b.Const(0), b.Const(n), 1, func(i ir.Reg) {
			off := b.Shl(i, b.Const(2))
			v := b.LoadX(ir.MemS32, p, off, true)
			b.If(ir.CondOf(ir.CmpGT, v, best), func() {
				b.Assign(best, v)
			})
		})
		b.Ret(best)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	checkAllVariants(t, build, []int64{base}, initMem)
}

func TestCompileDiamond(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("absdiff", 2)
		x, y := b.Arg(0), b.Arg(1)
		r := b.Var(b.Const(0))
		b.IfElse(ir.CondOf(ir.CmpGE, x, y),
			func() { b.Assign(r, b.Sub(x, y)) },
			func() { b.Assign(r, b.Sub(y, x)) })
		b.Ret(r)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, args := range [][]int64{{10, 4}, {4, 10}, {-3, -3}} {
		checkAllVariants(t, build, args, nil)
	}
}

func TestCompileStoresInLoop(t *testing.T) {
	const src = 0x1000
	const dst = 0x2000
	const n = 32
	initMem := func(m *mem.Memory) {
		for i := 0; i < n; i++ {
			m.WriteInt(src+uint64(8*i), 8, int64(i*i-7))
		}
	}
	build := func() *ir.Func {
		b := ir.NewBuilder("copyclamp", 2)
		s, d := b.Arg(0), b.Arg(1)
		zero := b.Const(0)
		b.ForRange(b.Const(0), b.Const(n), 1, func(i ir.Reg) {
			off := b.Shl(i, b.Const(3))
			v := b.LoadX(ir.Mem64, s, off, true)
			clamped := b.Max(v, zero)
			b.StoreX(ir.Mem64, d, off, clamped)
		})
		// Return a checksum.
		sum := b.Var(b.Const(0))
		b.ForRange(b.Const(0), b.Const(n), 1, func(i ir.Reg) {
			off := b.Shl(i, b.Const(3))
			b.Assign(sum, b.Add(sum, b.LoadX(ir.Mem64, d, off, true)))
		})
		b.Ret(sum)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	checkAllVariants(t, build, []int64{src, dst}, initMem)
}

func TestCompileHighPressureSpills(t *testing.T) {
	// More than 26 simultaneously live values forces spilling.
	build := func() *ir.Func {
		b := ir.NewBuilder("pressure", 1)
		x := b.Arg(0)
		var vals []ir.Reg
		for i := 0; i < 40; i++ {
			vals = append(vals, b.AddI(x, int64(i*i+1)))
		}
		sum := b.Const(0)
		for _, v := range vals {
			sum = b.Add(sum, v)
		}
		b.Ret(sum)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f := build()
	_, st, err := Compile(f, Target{HasMax: true, HasISel: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillSlots == 0 {
		t.Log("note: no spills generated; pressure test weaker than intended")
	}
	checkAllVariants(t, build, []int64{123}, nil)
}

func TestQuickCompiledMatchesInterp(t *testing.T) {
	// Property: for random inputs, the branchy and fully predicated
	// compilations agree with the interpreter on a 3-way max kernel —
	// the forward_pass inner step.
	build := func() *ir.Func {
		b := ir.NewBuilder("max3", 3)
		x, y, z := b.Arg(0), b.Arg(1), b.Arg(2)
		m := b.Var(x)
		b.If(ir.CondOf(ir.CmpGT, y, m), func() { b.Assign(m, y) })
		b.If(ir.CondOf(ir.CmpGT, z, m), func() { b.Assign(m, z) })
		zero := b.Const(0)
		b.If(ir.CondOf(ir.CmpLT, m, zero), func() { b.Assign(m, zero) })
		b.Ret(m)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		args := []int64{rng.Int63n(2001) - 1000, rng.Int63n(2001) - 1000, rng.Int63n(2001) - 1000}
		checkAllVariants(t, build, args, nil)
	}
}

func TestIfConvertTriangle(t *testing.T) {
	b := ir.NewBuilder("tri", 2)
	x := b.Var(b.Arg(0))
	y := b.Arg(1)
	b.If(ir.CondOf(ir.CmpLT, x, y), func() { b.Assign(x, y) })
	b.Ret(x)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n := IfConvert(f, DefaultIfConvOptions()); n != 1 {
		t.Fatalf("converted %d hammocks, want 1", n)
	}
	if CountHammocks(f) != 0 {
		t.Errorf("hammocks remain after conversion:\n%s", f.String())
	}
	if got := CountOps(f)[ir.OpSelect]; got != 1 {
		t.Errorf("selects = %d, want 1", got)
	}
	// Semantics preserved.
	got, err := ir.Interp(f, mem.New(), []int64{3, 8}, 1000)
	if err != nil || got != 8 {
		t.Errorf("after conversion: got %d (%v), want 8", got, err)
	}
}

func TestIfConvertDiamond(t *testing.T) {
	b := ir.NewBuilder("dia", 2)
	x, y := b.Arg(0), b.Arg(1)
	r := b.Var(b.Const(0))
	b.IfElse(ir.CondOf(ir.CmpGE, x, y),
		func() { b.Assign(r, b.Sub(x, y)) },
		func() { b.Assign(r, b.Sub(y, x)) })
	b.Ret(r)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n := IfConvert(f, DefaultIfConvOptions()); n != 1 {
		t.Fatalf("converted %d, want 1", n)
	}
	got, err := ir.Interp(f, mem.New(), []int64{4, 9}, 1000)
	if err != nil || got != 5 {
		t.Errorf("absdiff(4,9) after conversion = %d (%v)", got, err)
	}
}

func TestIfConvertRefusesStores(t *testing.T) {
	b := ir.NewBuilder("st", 2)
	p, v := b.Arg(0), b.Arg(1)
	b.If(ir.CondOf(ir.CmpGT, v, b.Const(0)), func() {
		b.Store(ir.Mem64, p, 0, v)
	})
	b.Ret(v)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n := IfConvert(f, DefaultIfConvOptions()); n != 0 {
		t.Errorf("converted %d hammocks containing stores", n)
	}
}

func TestIfConvertRefusesUnsafeLoads(t *testing.T) {
	// The paper's "c = (a > b) ? A[i] : B[i]" case: the load may fault,
	// so conversion is illegal unless the compiler proves it safe.
	makeF := func(safe bool) *ir.Func {
		b := ir.NewBuilder("ld", 2)
		p, v := b.Arg(0), b.Arg(1)
		r := b.Var(b.Const(0))
		b.If(ir.CondOf(ir.CmpGT, v, b.Const(0)), func() {
			b.Assign(r, b.Load(ir.Mem64, p, 0, safe))
		})
		b.Ret(r)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if n := IfConvert(makeF(false), DefaultIfConvOptions()); n != 0 {
		t.Error("unsafe load speculated")
	}
	if n := IfConvert(makeF(true), DefaultIfConvOptions()); n != 1 {
		t.Error("safe+noalias load not speculated")
	}
}

func TestIfConvertRefusesAliasedLoads(t *testing.T) {
	b := ir.NewBuilder("alias", 2)
	p, v := b.Arg(0), b.Arg(1)
	r := b.Var(b.Const(0))
	b.If(ir.CondOf(ir.CmpGT, v, b.Const(0)), func() {
		ld := b.Load(ir.Mem64, p, 0, true)
		b.Assign(r, ld)
	})
	b.Ret(r)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Clear the alias proof: the load stays Safe (non-faulting) but an
	// intervening store might alias it — Section IV-B's last obstacle.
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].IsLoad() {
				blk.Instrs[i].NoAlias = false
			}
		}
	}
	if n := IfConvert(f, DefaultIfConvOptions()); n != 0 {
		t.Error("possibly-aliased load speculated")
	}
}

func TestIfConvertArmSizeLimit(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("big", 2)
		x := b.Var(b.Arg(0))
		y := b.Arg(1)
		b.If(ir.CondOf(ir.CmpLT, x, y), func() {
			v := y
			for i := 0; i < 20; i++ {
				v = b.AddI(v, 1)
			}
			b.Assign(x, v)
		})
		b.Ret(x)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if n := IfConvert(build(), IfConvOptions{MaxArmInstrs: 8, SpeculateLoads: true}); n != 0 {
		t.Error("oversized arm speculated")
	}
	if n := IfConvert(build(), IfConvOptions{MaxArmInstrs: 64, SpeculateLoads: true}); n != 1 {
		t.Error("generous limit did not convert")
	}
}

func TestFoldMaxPatterns(t *testing.T) {
	cases := []struct {
		cmp  ir.CmpKind
		swap bool // payload order b,a instead of a,b
		want bool
	}{
		{ir.CmpGT, false, true},
		{ir.CmpGE, false, true},
		{ir.CmpLT, true, true},
		{ir.CmpLE, true, true},
		{ir.CmpGT, true, false}, // min, not max
		{ir.CmpEQ, false, false},
	}
	for _, c := range cases {
		b := ir.NewBuilder("m", 2)
		x, y := b.Arg(0), b.Arg(1)
		tv, ev := x, y
		if c.swap {
			tv, ev = y, x
		}
		b.Ret(b.Select(c.cmp, x, y, tv, ev))
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		n := foldMaxPatterns(f)
		if (n == 1) != c.want {
			t.Errorf("cmp=%s swap=%v: folded=%d, want fold=%v", c.cmp, c.swap, n, c.want)
		}
	}
}

func TestExpandSelectsRemovesAll(t *testing.T) {
	b := ir.NewBuilder("sel", 3)
	x, y, z := b.Arg(0), b.Arg(1), b.Arg(2)
	s1 := b.Select(ir.CmpGT, x, y, x, y)
	s2 := b.Select(ir.CmpLT, s1, z, z, s1)
	b.Ret(s2)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := expandSelects(f); err != nil {
		t.Fatal(err)
	}
	if n := CountOps(f)[ir.OpSelect]; n != 0 {
		t.Fatalf("%d selects remain", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("invalid after expansion: %v\n%s", err, f.String())
	}
	got, err := ir.Interp(f, mem.New(), []int64{3, 7, 5}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// max(3,7)=7; select(7<5, 5, 7) = 7.
	if got != 7 {
		t.Errorf("got %d, want 7", got)
	}
}

func TestCompileStatsReported(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("stats", 2)
		x := b.Var(b.Arg(0))
		y := b.Arg(1)
		b.If(ir.CondOf(ir.CmpLT, x, y), func() { b.Assign(x, y) })
		b.Ret(x)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	_, st, err := Compile(build(), Target{HasMax: true}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.HammocksConverted != 1 {
		t.Errorf("HammocksConverted = %d, want 1", st.HammocksConverted)
	}
	if st.MaxFolded != 1 {
		t.Errorf("MaxFolded = %d, want 1", st.MaxFolded)
	}
	if st.Instructions == 0 {
		t.Error("Instructions not counted")
	}

	// Without if-conversion on a stock target nothing is predicated.
	_, st2, err := Compile(build(), POWER5Stock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.HammocksConverted != 0 || st2.MaxFolded != 0 {
		t.Errorf("stock/plain stats = %+v", st2)
	}
}

func TestPredicationShrinksBranchCount(t *testing.T) {
	// Compile the 3-way max kernel both ways and compare branchiness
	// of the generated code — Table II's first column in miniature.
	build := func() *ir.Func {
		b := ir.NewBuilder("max3", 3)
		x, y, z := b.Arg(0), b.Arg(1), b.Arg(2)
		m := b.Var(x)
		b.If(ir.CondOf(ir.CmpGT, y, m), func() { b.Assign(m, y) })
		b.If(ir.CondOf(ir.CmpGT, z, m), func() { b.Assign(m, z) })
		b.Ret(m)
		f, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	countCond := func(tgt Target, opts Options) int {
		prog, _, err := Compile(build(), tgt, opts)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range prog.Code {
			if prog.Code[i].IsCondBranch() {
				n++
			}
		}
		return n
	}
	branchy := countCond(POWER5Stock(), Options{})
	predicated := countCond(Target{HasMax: true, HasISel: true}, DefaultOptions())
	if predicated >= branchy {
		t.Errorf("predicated code has %d conditional branches, branchy has %d", predicated, branchy)
	}
	if predicated != 0 {
		t.Errorf("fully predicable kernel still has %d conditional branches", predicated)
	}
}

func TestCompileRejectsHugeDisplacement(t *testing.T) {
	b := ir.NewBuilder("bigoff", 1)
	p := b.Arg(0)
	b.Ret(b.Load(ir.Mem64, p, 1<<20, true))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compile(f, POWER5Stock(), Options{}); err == nil {
		t.Error("unencodable displacement accepted")
	}
}
