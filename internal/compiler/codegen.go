package compiler

import (
	"fmt"

	"bioperf5/internal/ir"
	"bioperf5/internal/isa"
)

// Scratch registers reserved by the code generator:
//
//   - R11 and R12 hold reloaded spill operands;
//   - R0 holds a spilled destination or a spilled third operand
//     (store values, select else-values) — safe because the subset
//     gives R0 zero semantics only as the RA of addi, which the code
//     generator never emits with RA=R0 except via Li (where it is the
//     intent).
const (
	scratchA    = isa.R11
	scratchB    = isa.R12
	scratchC    = isa.R0
	spillBase   = -8 // first spill slot lives at SP-8
	spillStep   = -8
	maxSpillOff = 32000 // keep spill displacements encodable
)

type codegen struct {
	f     *ir.Func
	alloc *allocation
	asm   *isa.Asm
}

func (g *codegen) blockLabel(b *ir.Block) string {
	return fmt.Sprintf("%s.b%d", g.f.Name, b.ID)
}

func (g *codegen) spillOff(r ir.Reg) int64 {
	return int64(spillBase + spillStep*g.alloc.slots[r])
}

// src makes the value of r available in a physical register, reloading
// from the spill area into scratch when necessary.
func (g *codegen) src(r ir.Reg, scratch isa.Reg) isa.Reg {
	if p, ok := g.alloc.phys[r]; ok {
		return p
	}
	g.asm.Emit(isa.Instruction{Op: isa.OpLd, RT: scratch, RA: isa.SP, Imm: g.spillOff(r)})
	return scratch
}

// dstBegin returns the physical register an instruction should write;
// dstEnd stores it back to the spill slot when r is spilled.
func (g *codegen) dstBegin(r ir.Reg) isa.Reg {
	if p, ok := g.alloc.phys[r]; ok {
		return p
	}
	return scratchC
}

func (g *codegen) dstEnd(r ir.Reg, used isa.Reg) {
	if _, ok := g.alloc.phys[r]; ok {
		return
	}
	g.asm.Emit(isa.Instruction{Op: isa.OpStd, RT: used, RA: isa.SP, Imm: g.spillOff(r)})
}

var binOps = map[ir.Op]isa.Op{
	ir.OpAdd: isa.OpAdd,
	ir.OpMul: isa.OpMulld,
	ir.OpDiv: isa.OpDivd,
	ir.OpAnd: isa.OpAnd,
	ir.OpOr:  isa.OpOr,
	ir.OpXor: isa.OpXor,
	ir.OpShl: isa.OpSld,
	ir.OpShr: isa.OpSrd,
	ir.OpSar: isa.OpSrad,
	ir.OpMax: isa.OpMax,
}

var immOps = map[ir.Op]isa.Op{
	ir.OpAddImm: isa.OpAddi,
	ir.OpMulImm: isa.OpMulli,
	ir.OpAndImm: isa.OpAndi,
	ir.OpOrImm:  isa.OpOri,
	ir.OpXorImm: isa.OpXori,
	ir.OpShlImm: isa.OpSldi,
	ir.OpShrImm: isa.OpSrdi,
	ir.OpSarImm: isa.OpSradi,
}

var loadOps = map[ir.MemKind]isa.Op{
	ir.MemU8:  isa.OpLbz,
	ir.MemU16: isa.OpLhz,
	ir.MemS16: isa.OpLha,
	ir.MemU32: isa.OpLwz,
	ir.MemS32: isa.OpLwa,
	ir.Mem64:  isa.OpLd,
}

var loadXOps = map[ir.MemKind]isa.Op{
	ir.MemU8:  isa.OpLbzx,
	ir.MemU16: isa.OpLhzx,
	ir.MemS16: isa.OpLhax,
	ir.MemU32: isa.OpLwzx,
	ir.MemS32: isa.OpLwax,
	ir.Mem64:  isa.OpLdx,
}

func storeOp(k ir.MemKind, indexed bool) isa.Op {
	switch k.Size() {
	case 1:
		if indexed {
			return isa.OpStbx
		}
		return isa.OpStb
	case 2:
		if indexed {
			return isa.OpSthx
		}
		return isa.OpSth
	case 4:
		if indexed {
			return isa.OpStwx
		}
		return isa.OpStw
	default:
		if indexed {
			return isa.OpStdx
		}
		return isa.OpStd
	}
}

// cmpBit maps an IR predicate onto the CR bit the compare sets and the
// sense in which it must be read.  swap reports that the "then" and
// "else" payloads must be exchanged (for predicates expressed through
// the complementary bit).
func cmpBit(c ir.CmpKind) (bit isa.CRBit, want bool) {
	switch c {
	case ir.CmpEQ:
		return isa.CREQ, true
	case ir.CmpNE:
		return isa.CREQ, false
	case ir.CmpLT:
		return isa.CRLT, true
	case ir.CmpGE:
		return isa.CRLT, false
	case ir.CmpGT:
		return isa.CRGT, true
	default: // CmpLE
		return isa.CRGT, false
	}
}

func (g *codegen) emitInstr(in *ir.Instr) error {
	a := g.asm
	switch in.Op {
	case ir.OpConst:
		d := g.dstBegin(in.Dst)
		a.Li64(d, in.Imm)
		g.dstEnd(in.Dst, d)

	case ir.OpArg:
		// OpArg outside the entry prologue (which generate handles as a
		// parallel copy) would read a possibly-clobbered argument
		// register; hoistArgs guarantees this cannot happen.
		return fmt.Errorf("compiler: %s: argument read outside the entry prologue", g.f.Name)

	case ir.OpCopy:
		s := g.src(in.A, scratchA)
		d := g.dstBegin(in.Dst)
		if d != s {
			a.Mr(d, s)
		}
		g.dstEnd(in.Dst, d)

	case ir.OpNeg:
		s := g.src(in.A, scratchA)
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: isa.OpNeg, RT: d, RA: s})
		g.dstEnd(in.Dst, d)

	case ir.OpSub:
		// subf computes RB - RA.
		x := g.src(in.A, scratchA)
		y := g.src(in.B, scratchB)
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: isa.OpSubf, RT: d, RA: y, RB: x})
		g.dstEnd(in.Dst, d)

	case ir.OpAddImm, ir.OpMulImm, ir.OpAndImm, ir.OpOrImm, ir.OpXorImm,
		ir.OpShlImm, ir.OpShrImm, ir.OpSarImm:
		s := g.src(in.A, scratchA)
		if s == isa.R0 {
			return fmt.Errorf("compiler: %s: immediate op with R0 source", g.f.Name)
		}
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: immOps[in.Op], RT: d, RA: s, Imm: in.Imm})
		g.dstEnd(in.Dst, d)

	case ir.OpAdd, ir.OpMul, ir.OpDiv, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSar, ir.OpMax:
		x := g.src(in.A, scratchA)
		y := g.src(in.B, scratchB)
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: binOps[in.Op], RT: d, RA: x, RB: y})
		g.dstEnd(in.Dst, d)

	case ir.OpSelect:
		x := g.src(in.A, scratchA)
		y := g.src(in.B, scratchB)
		a.Emit(isa.Instruction{Op: isa.OpCmpd, CRF: isa.CR0, RA: x, RB: y})
		// The compare has consumed the scratches; reuse them for the
		// payload operands.
		tv := g.src(in.C, scratchA)
		ev := g.src(in.D, scratchB)
		bit, want := cmpBit(in.Cmp)
		if !want {
			tv, ev = ev, tv
		}
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: isa.OpIsel, RT: d, RA: tv, RB: ev, CRF: isa.CR0, Bit: bit})
		g.dstEnd(in.Dst, d)

	case ir.OpLoad:
		if in.Off < -32768 || in.Off > 32767 {
			return fmt.Errorf("compiler: %s: load displacement %d unencodable", g.f.Name, in.Off)
		}
		base := g.src(in.A, scratchA)
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: loadOps[in.Mem], RT: d, RA: base, Imm: in.Off})
		g.dstEnd(in.Dst, d)

	case ir.OpLoadX:
		base := g.src(in.A, scratchA)
		idx := g.src(in.B, scratchB)
		d := g.dstBegin(in.Dst)
		a.Emit(isa.Instruction{Op: loadXOps[in.Mem], RT: d, RA: base, RB: idx})
		g.dstEnd(in.Dst, d)

	case ir.OpStore:
		if in.Off < -32768 || in.Off > 32767 {
			return fmt.Errorf("compiler: %s: store displacement %d unencodable", g.f.Name, in.Off)
		}
		base := g.src(in.A, scratchA)
		val := g.src(in.C, scratchC)
		a.Emit(isa.Instruction{Op: storeOp(in.Mem, false), RT: val, RA: base, Imm: in.Off})

	case ir.OpStoreX:
		base := g.src(in.A, scratchA)
		idx := g.src(in.B, scratchB)
		val := g.src(in.C, scratchC)
		a.Emit(isa.Instruction{Op: storeOp(in.Mem, true), RT: val, RA: base, RB: idx})

	default:
		return fmt.Errorf("compiler: %s: cannot lower IR op %s", g.f.Name, in.Op)
	}
	return nil
}

func (g *codegen) emitTerm(b *ir.Block, next *ir.Block) error {
	a := g.asm
	switch b.Term.Kind {
	case ir.TermRet:
		if b.Term.A != ir.NoReg {
			s := g.src(b.Term.A, scratchA)
			if s != isa.R3 {
				a.Mr(isa.R3, s)
			}
		}
		a.Ret()

	case ir.TermJump:
		if b.Term.Then != next {
			a.Branch(isa.Instruction{Op: isa.OpB}, g.blockLabel(b.Term.Then))
		}

	case ir.TermCondBr:
		x := g.src(b.Term.A, scratchA)
		if b.Term.B == ir.NoReg {
			a.Emit(isa.Instruction{Op: isa.OpCmpdi, CRF: isa.CR0, RA: x, Imm: b.Term.BImm})
		} else {
			y := g.src(b.Term.B, scratchB)
			a.Emit(isa.Instruction{Op: isa.OpCmpd, CRF: isa.CR0, RA: x, RB: y})
		}
		bit, want := cmpBit(b.Term.Cmp)
		switch {
		case b.Term.Else == next:
			a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: bit, Want: want},
				g.blockLabel(b.Term.Then))
		case b.Term.Then == next:
			a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: bit, Want: !want},
				g.blockLabel(b.Term.Else))
		default:
			a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: bit, Want: want},
				g.blockLabel(b.Term.Then))
			a.Branch(isa.Instruction{Op: isa.OpB}, g.blockLabel(b.Term.Else))
		}

	default:
		return fmt.Errorf("compiler: %s: block %s not terminated", g.f.Name, b.Name)
	}
	return nil
}

// emitArgPrologue lowers the leading OpArg reads as one parallel copy:
// spilled destinations store straight from their argument registers
// (never clobbering anything), then physical destinations are emitted
// in an order where no move overwrites a still-needed source; a cycle
// (e.g. arg0 allocated to r4 while arg1 is allocated to r3) is broken
// through the scratch register.
func (g *codegen) emitArgPrologue(args []ir.Instr) error {
	type move struct{ dst, src isa.Reg }
	var moves []move
	for i := range args {
		in := &args[i]
		src := isa.R3 + isa.Reg(in.Imm)
		if _, spilled := g.alloc.slots[in.Dst]; spilled {
			g.asm.Emit(isa.Instruction{Op: isa.OpStd, RT: src, RA: isa.SP, Imm: g.spillOff(in.Dst)})
			continue
		}
		if d := g.alloc.phys[in.Dst]; d != src {
			moves = append(moves, move{dst: d, src: src})
		}
	}
	for len(moves) > 0 {
		emitted := false
		for i, m := range moves {
			blocked := false
			for j, o := range moves {
				if j != i && o.src == m.dst {
					blocked = true
					break
				}
			}
			if !blocked {
				g.asm.Mr(m.dst, m.src)
				moves = append(moves[:i], moves[i+1:]...)
				emitted = true
				break
			}
		}
		if emitted {
			continue
		}
		// Every remaining move's destination is someone's source: break
		// the cycle by parking one source in the scratch register.
		g.asm.Mr(scratchA, moves[0].src)
		src := moves[0].src
		for i := range moves {
			if moves[i].src == src {
				moves[i].src = scratchA
			}
		}
	}
	return nil
}

// generate lowers the (already optimized and allocated) function to an
// assembled program whose entry label is the function name.
func generate(f *ir.Func, alloc *allocation) (*isa.Program, error) {
	if len(alloc.slots)*8 > maxSpillOff {
		return nil, fmt.Errorf("compiler: %s: spill area too large", f.Name)
	}
	g := &codegen{f: f, alloc: alloc, asm: isa.NewAsm()}
	g.asm.Label(f.Name)
	for i, b := range f.Blocks {
		g.asm.Label(g.blockLabel(b))
		start := 0
		if i == 0 {
			// The entry block begins with the canonical argument reads
			// (hoistArgs); they form a parallel copy from r3..r10 into
			// the allocated registers, which must be sequenced so no
			// incoming argument is clobbered before it is read.
			for start < len(b.Instrs) && b.Instrs[start].Op == ir.OpArg {
				start++
			}
			if err := g.emitArgPrologue(b.Instrs[:start]); err != nil {
				return nil, err
			}
		}
		for j := start; j < len(b.Instrs); j++ {
			if err := g.emitInstr(&b.Instrs[j]); err != nil {
				return nil, err
			}
		}
		var next *ir.Block
		if i+1 < len(f.Blocks) {
			next = f.Blocks[i+1]
		}
		if err := g.emitTerm(b, next); err != nil {
			return nil, err
		}
	}
	return g.asm.Finish()
}
