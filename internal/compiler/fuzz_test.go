package compiler

import (
	"math/rand"
	"testing"

	"bioperf5/internal/ir"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
)

// genFunc builds a random structured IR function over 3 integer
// arguments: straight-line arithmetic, hammocks (with and without
// register-only arms), selects, maxes and a bounded loop.  It is the
// input generator of the differential fuzzer below.
func genFunc(rng *rand.Rand) *ir.Func {
	b := ir.NewBuilder("fuzz", 3)
	vals := []ir.Reg{b.Arg(0), b.Arg(1), b.Arg(2)}
	pick := func() ir.Reg { return vals[rng.Intn(len(vals))] }
	push := func(r ir.Reg) {
		vals = append(vals, r)
		if len(vals) > 24 {
			vals = vals[1:]
		}
	}

	emitOne := func() {
		switch rng.Intn(10) {
		case 0:
			push(b.Add(pick(), pick()))
		case 1:
			push(b.Sub(pick(), pick()))
		case 2:
			push(b.Mul(pick(), b.Const(int64(rng.Intn(7))-3)))
		case 3:
			push(b.Xor(pick(), pick()))
		case 4:
			push(b.And(pick(), b.Const(int64(rng.Intn(1<<16)))))
		case 5:
			push(b.Sar(pick(), b.Const(int64(rng.Intn(8)))))
		case 6:
			push(b.Max(pick(), pick()))
		case 7:
			cmp := ir.CmpKind(rng.Intn(6))
			push(b.Select(cmp, pick(), pick(), pick(), pick()))
		case 8:
			push(b.Neg(pick()))
		default:
			push(b.Const(int64(rng.Intn(2001)) - 1000))
		}
	}

	nstmt := 3 + rng.Intn(8)
	for s := 0; s < nstmt; s++ {
		switch rng.Intn(4) {
		case 0: // hammock
			acc := b.Var(pick())
			v := pick()
			cmp := ir.CmpKind(rng.Intn(6))
			b.If(ir.CondOf(cmp, v, acc), func() {
				b.Assign(acc, b.Add(v, b.Const(int64(rng.Intn(9)))))
			})
			push(acc)
		case 1: // diamond
			r := b.Var(b.Const(0))
			x, y := pick(), pick()
			b.IfElse(ir.CondOf(ir.CmpGE, x, y),
				func() { b.Assign(r, b.Sub(x, y)) },
				func() { b.Assign(r, b.Sub(y, x)) })
			push(r)
		case 2: // bounded loop
			acc := b.Var(pick())
			n := b.Const(int64(1 + rng.Intn(6)))
			b.ForRange(b.Const(0), n, 1, func(i ir.Reg) {
				b.Assign(acc, b.Add(acc, i))
			})
			push(acc)
		default:
			emitOne()
		}
	}
	sum := b.Const(0)
	for _, v := range vals {
		sum = b.Add(sum, v)
	}
	b.Ret(sum)
	f, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return f
}

// TestDifferentialFuzz generates random IR programs and checks that
// every target/pipeline combination compiles them to machine code that
// agrees with the IR interpreter.
func TestDifferentialFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 25
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < trials; trial++ {
		seed := rng.Int63()
		args := []int64{rng.Int63n(2001) - 1000, rng.Int63n(2001) - 1000, rng.Int63n(2001) - 1000}

		ref := genFunc(rand.New(rand.NewSource(seed)))
		want, err := ir.Interp(ref, mem.New(), args, 5_000_000)
		if err != nil {
			t.Fatalf("trial %d: interp: %v", trial, err)
		}

		for tname, tgt := range targets {
			for oname, opts := range optionSets {
				f := genFunc(rand.New(rand.NewSource(seed)))
				prog, _, err := Compile(f, tgt, opts)
				if err != nil {
					t.Fatalf("trial %d %s/%s: compile: %v", trial, tname, oname, err)
				}
				mach := machine.New(prog, mem.New())
				uargs := make([]uint64, len(args))
				for i, a := range args {
					uargs[i] = uint64(a)
				}
				got, err := mach.Call("fuzz", 5_000_000, uargs...)
				if err != nil {
					t.Fatalf("trial %d %s/%s: run: %v", trial, tname, oname, err)
				}
				if int64(got) != want {
					t.Fatalf("trial %d %s/%s (seed %d, args %v): got %d, want %d\n%s",
						trial, tname, oname, seed, args, int64(got), want,
						genFunc(rand.New(rand.NewSource(seed))).String())
				}
			}
		}
	}
}
