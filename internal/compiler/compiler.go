package compiler

import (
	"fmt"

	"bioperf5/internal/ir"
	"bioperf5/internal/isa"
)

// Target describes which of the paper's ISA extensions the target core
// implements (Section IV-A).
type Target struct {
	HasMax  bool // the hypothetical single-cycle max instruction
	HasISel bool // the embedded-PowerPC isel instruction
}

// POWER5Stock is the unmodified POWER5: neither extension, so all
// predicated IR lowers back to compare-and-branch hammocks.
func POWER5Stock() Target { return Target{} }

// Options controls the optimization pipeline.
type Options struct {
	// IfConvert enables the gcc-style hammock if-conversion pass.  The
	// paper's "compiler" bars in Figure 3 have this on; the "hand"
	// bars rely on max/select operations the kernel author placed and
	// leave the remaining branches alone.
	IfConvert bool
	IfConv    IfConvOptions
}

// DefaultOptions returns the pipeline configuration used by the
// experiments' compiler variants.
func DefaultOptions() Options {
	return Options{IfConvert: true, IfConv: DefaultIfConvOptions()}
}

// Stats reports what the pipeline did to a function, for the harness's
// instruction-mix tables.
type Stats struct {
	HammocksConverted int // hammocks if-conversion flattened
	MaxFolded         int // selects pattern-matched into max
	SelectsExpanded   bool
	SpillSlots        int
	Instructions      int // final machine instruction count
}

// Compile optimizes and lowers f for the given target.  The function is
// mutated; callers that need to compile one kernel for several targets
// should rebuild the IR per call (kernel constructors are cheap).
func Compile(f *ir.Func, tgt Target, opts Options) (*isa.Program, *Stats, error) {
	if len(f.Blocks) == 0 {
		return nil, nil, errNoEntry
	}
	if err := f.Verify(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}

	if opts.IfConvert {
		st.HammocksConverted = IfConvert(f, opts.IfConv)
	}
	// Collapse the copies if-conversion introduced so the max pattern
	// matcher sees select(a<b, b, a) rather than select(a<b, t, a).
	copyProp(f)
	if tgt.HasMax {
		st.MaxFolded = foldMaxPatterns(f)
	}
	if err := lowerForTarget(f, tgt); err != nil {
		return nil, nil, err
	}
	st.SelectsExpanded = !tgt.HasISel

	hoistConsts(f)
	hoistArgs(f) // must end up ahead of the hoisted constants
	copyProp(f)
	foldImmediates(f)
	sinkCopies(f)
	dce(f)
	removeUnreachable(f)
	if err := f.Verify(); err != nil {
		return nil, nil, fmt.Errorf("compiler: post-optimization IR invalid: %w", err)
	}

	alloc, err := linearScan(f)
	if err != nil {
		return nil, nil, err
	}
	st.SpillSlots = len(alloc.slots)

	prog, err := generate(f, alloc)
	if err != nil {
		return nil, nil, err
	}
	st.Instructions = prog.Len()
	return prog, st, nil
}
