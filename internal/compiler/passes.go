// Package compiler lowers IR functions (package ir) to the PPC subset
// (package isa).  Its centerpiece is the if-conversion pass modelled on
// the one the paper added to gcc 4.1.1 (Section IV-B): control-flow
// hammocks whose arms are side-effect free — and whose loads are
// provably safe and unaliased — are rewritten into select/max data flow,
// which later lowers to the paper's isel or max instructions.
package compiler

import (
	"fmt"

	"bioperf5/internal/ir"
)

// removeUnreachable drops blocks with no path from the entry.
func removeUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}

// hoistConsts moves every constant definition to the entry block,
// deduplicated by value, so loop bodies do not rematerialize constants
// each iteration.  Constants are pure, so the motion is always legal;
// each constant gets a fresh register and uses are renamed, which keeps
// the original registers' single-assignment-per-path structure intact.
func hoistConsts(f *ir.Func) {
	byValue := make(map[int64]ir.Reg)
	var hoisted []ir.Instr
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst {
				r, ok := byValue[in.Imm]
				if !ok {
					r = f.NewReg()
					byValue[in.Imm] = r
					hoisted = append(hoisted, ir.Instr{Op: ir.OpConst, Dst: r, Imm: in.Imm})
				}
				// The original register may be reassigned elsewhere
				// (it is a mutable vreg), so keep a copy if anything
				// other than this definition could matter.  A copy is
				// cheap and copyProp removes it when redundant.
				out = append(out, ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: r})
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	if len(hoisted) == 0 {
		return
	}
	entry := f.Entry()
	entry.Instrs = append(hoisted, entry.Instrs...)
}

// hoistArgs canonicalizes argument reads: every OpArg anywhere in the
// function is replaced by a copy from a single canonical per-index
// OpArg placed at the very start of the entry block.  Semantically an
// OpArg reads the immutable incoming argument, so the motion is always
// legal; physically it guarantees the incoming argument registers are
// read before anything else (hoisted constants, spills) can clobber
// them.
func hoistArgs(f *ir.Func) {
	canon := make(map[int64]ir.Reg, f.NArgs)
	var prologue []ir.Instr
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpArg {
				continue
			}
			r, ok := canon[in.Imm]
			if !ok {
				r = f.NewReg()
				canon[in.Imm] = r
				prologue = append(prologue, ir.Instr{Op: ir.OpArg, Dst: r, Imm: in.Imm})
			}
			*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: r}
		}
	}
	if len(prologue) > 0 {
		entry := f.Entry()
		entry.Instrs = append(prologue, entry.Instrs...)
	}
}

// copyProp forwards sources of copies to their uses within each block
// when neither side is redefined in between (a conservative, local
// pass; enough to clean up after hoistConsts and if-conversion).
func copyProp(f *ir.Func) {
	for _, b := range f.Blocks {
		alias := make(map[ir.Reg]ir.Reg)
		resolve := func(r ir.Reg) ir.Reg {
			for {
				a, ok := alias[r]
				if !ok {
					return r
				}
				r = a
			}
		}
		kill := func(r ir.Reg) {
			delete(alias, r)
			for k, v := range alias {
				if v == r {
					delete(alias, k)
				}
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.A != ir.NoReg {
				in.A = resolve(in.A)
			}
			if in.B != ir.NoReg {
				in.B = resolve(in.B)
			}
			if in.C != ir.NoReg {
				in.C = resolve(in.C)
			}
			if in.D != ir.NoReg {
				in.D = resolve(in.D)
			}
			if in.Dst != ir.NoReg {
				kill(in.Dst)
				if in.Op == ir.OpCopy && in.A != in.Dst {
					alias[in.Dst] = in.A
				}
			}
		}
		t := &b.Term
		if t.Kind == ir.TermCondBr || t.Kind == ir.TermRet {
			if t.A != ir.NoReg {
				t.A = resolve(t.A)
			}
		}
		if t.Kind == ir.TermCondBr && t.B != ir.NoReg {
			t.B = resolve(t.B)
		}
	}
}

// foldImmediates rewrites binary operations whose right-hand side is a
// single-definition constant into immediate-form operations (the PPC
// D-form instructions), and conditional branches against constants into
// compare-immediate terminators.  This removes most constants from the
// register allocation problem — exactly what a real PPC compiler does.
func foldImmediates(f *ir.Func) {
	defs := make(map[ir.Reg]int)
	consts := make(map[ir.Reg]int64)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == ir.NoReg {
				continue
			}
			defs[in.Dst]++
			if in.Op == ir.OpConst {
				consts[in.Dst] = in.Imm
			}
		}
	}
	constOf := func(r ir.Reg) (int64, bool) {
		if r == ir.NoReg || defs[r] != 1 {
			return 0, false
		}
		v, ok := consts[r]
		return v, ok
	}
	fits16s := func(v int64) bool { return v >= -0x8000 && v <= 0x7FFF }
	fits16u := func(v int64) bool { return v >= 0 && v <= 0xFFFF }

	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			vb, okB := constOf(in.B)
			va, okA := constOf(in.A)
			switch in.Op {
			case ir.OpAdd:
				switch {
				case okB && fits16s(vb):
					*in = ir.Instr{Op: ir.OpAddImm, Dst: in.Dst, A: in.A, Imm: vb}
				case okA && fits16s(va):
					*in = ir.Instr{Op: ir.OpAddImm, Dst: in.Dst, A: in.B, Imm: va}
				}
			case ir.OpSub:
				if okB && fits16s(-vb) {
					*in = ir.Instr{Op: ir.OpAddImm, Dst: in.Dst, A: in.A, Imm: -vb}
				}
			case ir.OpMul:
				switch {
				case okB && fits16s(vb):
					*in = ir.Instr{Op: ir.OpMulImm, Dst: in.Dst, A: in.A, Imm: vb}
				case okA && fits16s(va):
					*in = ir.Instr{Op: ir.OpMulImm, Dst: in.Dst, A: in.B, Imm: va}
				}
			case ir.OpAnd:
				if okB && fits16u(vb) {
					*in = ir.Instr{Op: ir.OpAndImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			case ir.OpOr:
				if okB && fits16u(vb) {
					*in = ir.Instr{Op: ir.OpOrImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			case ir.OpXor:
				if okB && fits16u(vb) {
					*in = ir.Instr{Op: ir.OpXorImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			case ir.OpShl:
				if okB && vb >= 0 && vb < 64 {
					*in = ir.Instr{Op: ir.OpShlImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			case ir.OpShr:
				if okB && vb >= 0 && vb < 64 {
					*in = ir.Instr{Op: ir.OpShrImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			case ir.OpSar:
				if okB && vb >= 0 && vb < 64 {
					*in = ir.Instr{Op: ir.OpSarImm, Dst: in.Dst, A: in.A, Imm: vb}
				}
			}
		}
		if t := &b.Term; t.Kind == ir.TermCondBr && t.B != ir.NoReg {
			if vb, ok := constOf(t.B); ok && fits16s(vb) {
				t.B = ir.NoReg
				t.BImm = vb
			} else if va, ok := constOf(t.A); ok && fits16s(va) && t.B != ir.NoReg {
				// const OP reg  ==>  reg OP' const with the predicate
				// mirrored across the comparison.
				t.A = t.B
				t.B = ir.NoReg
				t.BImm = va
				t.Cmp = mirrorCmp(t.Cmp)
			}
		}
	}
}

// mirrorCmp swaps the operand roles of a predicate (a OP b == b OP' a).
func mirrorCmp(c ir.CmpKind) ir.CmpKind {
	switch c {
	case ir.CmpLT:
		return ir.CmpGT
	case ir.CmpLE:
		return ir.CmpGE
	case ir.CmpGT:
		return ir.CmpLT
	case ir.CmpGE:
		return ir.CmpLE
	}
	return c // EQ and NE are symmetric
}

// sinkCopies coalesces the `t = op ...; acc = t` pairs that Assign
// produces when t has no other use: the operation writes acc directly
// and the copy disappears.  Without this, every hand-inserted max
// costs an extra register move.
func sinkCopies(f *ir.Func) {
	uses := make(map[ir.Reg]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses(nil) {
				uses[u]++
			}
		}
		switch b.Term.Kind {
		case ir.TermCondBr:
			uses[b.Term.A]++
			uses[b.Term.B]++
		case ir.TermRet:
			if b.Term.A != ir.NoReg {
				uses[b.Term.A]++
			}
		}
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if i+1 < len(b.Instrs) {
				next := &b.Instrs[i+1]
				if next.Op == ir.OpCopy && in.Dst != ir.NoReg &&
					next.A == in.Dst && uses[in.Dst] == 1 &&
					next.Dst != in.Dst {
					in.Dst = next.Dst
					out = append(out, in)
					i++ // skip the copy
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// dce removes pure instructions whose destination is never read.  It
// iterates to a fixpoint using whole-function use counts; mutable
// registers make a full sparse analysis unnecessary for our kernels.
func dce(f *ir.Func) {
	for {
		used := make(map[ir.Reg]bool)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				for _, u := range b.Instrs[i].Uses(nil) {
					used[u] = true
				}
			}
			if b.Term.Kind == ir.TermCondBr {
				used[b.Term.A] = true
				used[b.Term.B] = true
			}
			if b.Term.Kind == ir.TermRet && b.Term.A != ir.NoReg {
				used[b.Term.A] = true
			}
		}
		removed := false
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := !in.HasSideEffects() && !used[in.Dst] &&
					// A dead load is removable too: our loads have no
					// side effects (they may fault in principle, but a
					// dead unsafe load only exists if the front end
					// emitted one, which builders never do).
					in.Op != ir.OpInvalid
				if dead {
					removed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if !removed {
			return
		}
	}
}

// IfConvOptions tunes the if-conversion pass.
type IfConvOptions struct {
	// MaxArmInstrs bounds the number of instructions speculated per
	// arm; beyond it, branching is cheaper than predicating.
	MaxArmInstrs int
	// SpeculateLoads permits speculating loads at all (they must still
	// be marked Safe and NoAlias).  The paper's compiler has this on.
	SpeculateLoads bool
}

// DefaultIfConvOptions mirrors the aggressiveness of the paper's
// modified gcc.
func DefaultIfConvOptions() IfConvOptions {
	return IfConvOptions{MaxArmInstrs: 8, SpeculateLoads: true}
}

// IfConvert rewrites triangle and diamond hammocks into straight-line
// select data flow.  It returns the number of hammocks converted.
//
// Legality follows Section IV-B: an arm may be speculated only when
// every instruction is side-effect free, cheap, and any load is both
// provably non-faulting (Safe) and not aliased by stores between the
// load and its use (NoAlias).  Hammocks failing the test are left
// intact — exactly the cases ("the compiler must make conservative
// assumptions") where the paper's hand-inserted code wins.
func IfConvert(f *ir.Func, opts IfConvOptions) int {
	preds := f.Preds()
	converted := 0
	for _, b := range f.Blocks {
		if b.Term.Kind != ir.TermCondBr {
			continue
		}
		t, e := b.Term.Then, b.Term.Else
		switch {
		case t != e && isArm(t, b, preds) && b.Term.Else == jumpTarget(t):
			// Triangle: if (c) { T }; join == Else.
			if !armConvertible(t, opts) {
				continue
			}
			condSelects(f, b, b.Term, []*ir.Block{t}, nil, jumpTarget(t))
			converted++
		case t != e && isArm(t, b, preds) && isArm(e, b, preds) &&
			jumpTarget(t) != nil && jumpTarget(t) == jumpTarget(e):
			// Diamond: if (c) { T } else { E }.
			if !armConvertible(t, opts) || !armConvertible(e, opts) {
				continue
			}
			condSelects(f, b, b.Term, []*ir.Block{t}, []*ir.Block{e}, jumpTarget(t))
			converted++
		case t != e && isArm(e, b, preds) && b.Term.Then == jumpTarget(e):
			// Inverted triangle: if (!c) { E }; join == Then.
			if !armConvertible(e, opts) {
				continue
			}
			neg := b.Term
			neg.Cmp = neg.Cmp.Negate()
			condSelects(f, b, neg, []*ir.Block{e}, nil, jumpTarget(e))
			converted++
		}
	}
	if converted > 0 {
		removeUnreachable(f)
	}
	return converted
}

// isArm reports whether x is a single-predecessor straight-line block
// hanging off b.
func isArm(x, b *ir.Block, preds map[*ir.Block][]*ir.Block) bool {
	p := preds[x]
	return len(p) == 1 && p[0] == b && x.Term.Kind == ir.TermJump
}

// jumpTarget returns the jump destination of a straight-line block.
func jumpTarget(x *ir.Block) *ir.Block {
	if x.Term.Kind == ir.TermJump {
		return x.Term.Then
	}
	return nil
}

// armConvertible applies the Section IV-B legality rules to one arm.
func armConvertible(x *ir.Block, opts IfConvOptions) bool {
	if len(x.Instrs) == 0 || len(x.Instrs) > opts.MaxArmInstrs {
		return false
	}
	for i := range x.Instrs {
		in := &x.Instrs[i]
		switch {
		case in.HasSideEffects():
			return false // stores cannot be speculated
		case in.Op == ir.OpDiv:
			return false // too expensive to speculate
		case in.IsLoad():
			if !opts.SpeculateLoads || !in.Safe || !in.NoAlias {
				return false
			}
		}
	}
	return true
}

// condSelects flattens the given arms into b, emitting select
// instructions for every register the arms assign, and reroutes b to
// join.  The terminator condition cond decides in favour of the first
// arm list.
func condSelects(f *ir.Func, b *ir.Block, cond ir.Term, thenArm, elseArm []*ir.Block, join *ir.Block) {
	cloneArm := func(arm []*ir.Block) map[ir.Reg]ir.Reg {
		final := make(map[ir.Reg]ir.Reg)
		for _, blk := range arm {
			for _, in := range blk.Instrs {
				c := in
				remap := func(r ir.Reg) ir.Reg {
					if nr, ok := final[r]; ok {
						return nr
					}
					return r
				}
				if c.A != ir.NoReg {
					c.A = remap(c.A)
				}
				if c.B != ir.NoReg {
					c.B = remap(c.B)
				}
				if c.C != ir.NoReg {
					c.C = remap(c.C)
				}
				if c.D != ir.NoReg {
					c.D = remap(c.D)
				}
				if c.Dst != ir.NoReg {
					fresh := f.NewReg()
					final[c.Dst] = fresh
					c.Dst = fresh
				}
				b.Instrs = append(b.Instrs, c)
			}
		}
		return final
	}
	finalT := cloneArm(thenArm)
	finalE := cloneArm(elseArm)

	assigned := make(map[ir.Reg]bool)
	var order []ir.Reg
	collect := func(m map[ir.Reg]ir.Reg, arm []*ir.Block) {
		// Walk the arm in program order so select emission is
		// deterministic.
		for _, blk := range arm {
			for i := range blk.Instrs {
				d := blk.Instrs[i].Dst
				if d == ir.NoReg {
					continue
				}
				if _, ok := m[d]; ok && !assigned[d] {
					assigned[d] = true
					order = append(order, d)
				}
			}
		}
	}
	collect(finalT, thenArm)
	collect(finalE, elseArm)

	for _, r := range order {
		tv, ok := finalT[r]
		if !ok {
			tv = r
		}
		ev, ok := finalE[r]
		if !ok {
			ev = r
		}
		b.Instrs = append(b.Instrs, ir.Instr{
			Op: ir.OpSelect, Dst: r, Cmp: cond.Cmp,
			A: cond.A, B: cond.B, C: tv, D: ev,
		})
	}
	b.Term = ir.Term{Kind: ir.TermJump, Then: join}
}

// foldMaxPatterns rewrites selects that compute a maximum into the
// OpMax form: select(a>b, a, b), select(a>=b, a, b), select(a<b, b, a)
// and select(a<=b, b, a) are all max(a, b).  This is the pattern
// matcher of Section IV-B ("the if-conversion transformation simply
// identifies common code patterns ... such as min, max").
func foldMaxPatterns(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpSelect {
				continue
			}
			isMax := (in.Cmp == ir.CmpGT || in.Cmp == ir.CmpGE) && in.C == in.A && in.D == in.B ||
				(in.Cmp == ir.CmpLT || in.Cmp == ir.CmpLE) && in.C == in.B && in.D == in.A
			if isMax {
				*in = ir.Instr{Op: ir.OpMax, Dst: in.Dst, A: in.A, B: in.B}
				n++
			}
		}
	}
	return n
}

// lowerForTarget rewrites predicated operations the target lacks.
//
//   - OpMax without a max instruction becomes OpSelect (if isel exists)
//     or a branch hammock (plain POWER5).
//   - OpSelect without isel becomes a branch hammock.
//
// Branch expansion splits blocks, so it runs before register
// allocation.
func lowerForTarget(f *ir.Func, tgt Target) error {
	if !tgt.HasMax {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpMax {
					*in = ir.Instr{Op: ir.OpSelect, Dst: in.Dst,
						Cmp: ir.CmpGE, A: in.A, B: in.B, C: in.A, D: in.B}
				}
			}
		}
	}
	if !tgt.HasISel {
		if err := expandSelects(f); err != nil {
			return err
		}
	}
	return nil
}

// expandSelects replaces every OpSelect with an explicit branch
// hammock, splitting the containing block.
func expandSelects(f *ir.Func) error {
	// Iterate until no selects remain; each expansion splits one block.
	for {
		var blk *ir.Block
		idx := -1
	search:
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSelect {
					blk, idx = b, i
					break search
				}
			}
		}
		if blk == nil {
			return nil
		}
		sel := blk.Instrs[idx]
		rest := make([]ir.Instr, len(blk.Instrs)-idx-1)
		copy(rest, blk.Instrs[idx+1:])
		tail := f.NewBlock(blk.Name + ".seljoin")
		thenB := f.NewBlock(blk.Name + ".selthen")
		tail.Instrs = rest
		tail.Term = blk.Term

		blk.Instrs = append(blk.Instrs[:idx], ir.Instr{Op: ir.OpCopy, Dst: sel.Dst, A: sel.D})
		blk.Term = ir.Term{Kind: ir.TermCondBr, Cmp: sel.Cmp, A: sel.A, B: sel.B,
			Then: thenB, Else: tail}
		thenB.Instrs = []ir.Instr{{Op: ir.OpCopy, Dst: sel.Dst, A: sel.C}}
		thenB.Term = ir.Term{Kind: ir.TermJump, Then: tail}
	}
}

// countOps tallies IR operations by kind (used by tests and by the
// harness to report how many predication sites each strategy produced).
func countOps(f *ir.Func) map[ir.Op]int {
	m := make(map[ir.Op]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			m[b.Instrs[i].Op]++
		}
	}
	return m
}

// CountOps is the exported form of countOps.
func CountOps(f *ir.Func) map[ir.Op]int { return countOps(f) }

// CountHammocks returns how many conditional-branch blocks the function
// currently has (a proxy for remaining branchiness).
func CountHammocks(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermCondBr {
			n++
		}
	}
	return n
}

var errNoEntry = fmt.Errorf("compiler: function has no entry block")
