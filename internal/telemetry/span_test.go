package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanHierarchy checks parent/child linkage through the context:
// a child started under a parent's context records the parent's ID.
func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, StageExecute)
	root.Attr("app", "Fasta")
	root.AttrInt("seed", 42)
	root.AttrBool("cold", true)
	_, child := StartSpan(ctx1, StageCapture)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// finish order: child first
	if spans[0].Name != StageCapture || spans[1].Name != StageExecute {
		t.Fatalf("unexpected names: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent = %d, want root ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("root parent = %d, want 0", spans[1].Parent)
	}
	if len(spans[1].Attrs) != 3 {
		t.Fatalf("root attrs = %d, want 3", len(spans[1].Attrs))
	}
	if spans[1].Attrs[1].Int != 42 || spans[1].Attrs[1].Kind != AttrInt {
		t.Errorf("seed attr = %+v", spans[1].Attrs[1])
	}
	if spans[0].DurNS < 0 || spans[1].DurNS < spans[0].DurNS {
		t.Errorf("durations not nested: child %d, root %d", spans[0].DurNS, spans[1].DurNS)
	}
}

// TestSpanDisabledAllocFree is the hot-path contract: with no tracer
// in the context, StartSpan + attrs + End allocate nothing.  This is
// what lets instrumentation live permanently on the serve cached path.
func TestSpanDisabledAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpan(ctx, StageExecute)
		sp.Attr("app", "Fasta")
		sp.AttrInt("seed", 1)
		sp.AttrBool("cold", false)
		sp.End()
		if tr := TracerFrom(c2); tr != nil {
			t.Fatal("tracer appeared from nowhere")
		}
		var none *Tracer
		none.Record(c2, StageQueue, time.Time{}, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

// TestSpanConcurrent hammers one tracer from many goroutines; run
// under -race this is the data-race gate for the span subsystem.
func TestSpanConcurrent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(0, reg)
	base := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, sp := StartSpan(base, StageExecute)
				sp.AttrInt("goroutine", int64(g))
				_, inner := StartSpan(ctx, StageReplay)
				inner.End()
				tr.Record(ctx, StageQueue, time.Now(), time.Microsecond)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != 8*200*3 {
		t.Errorf("got %d spans, want %d", got, 8*200*3)
	}
	// IDs must be unique.
	seen := make(map[uint64]bool)
	for _, d := range tr.Spans() {
		if seen[d.ID] {
			t.Fatalf("duplicate span ID %d", d.ID)
		}
		seen[d.ID] = true
	}
	// The registry got a histogram per stage.
	snap := reg.Snapshot(0)
	for _, name := range []string{"span." + StageExecute + ".us", "span." + StageReplay + ".us", "span." + StageQueue + ".us"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("missing histogram %q", name)
		}
	}
}

// TestSpanCapacityBound: past the capacity the tracer drops and counts
// instead of growing without bound.
func TestSpanCapacityBound(t *testing.T) {
	tr := NewTracer(4, nil)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, StageQueue)
		sp.End()
	}
	if tr.Len() != 4 {
		t.Errorf("retained %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", tr.Dropped())
	}
}

// TestSpanJSONLRoundTrip: WriteJSONL output parses back via
// ReadSpansJSONL with IDs, names, times and typed attrs intact.
func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx := WithTracer(context.Background(), tr)
	c1, root := StartSpan(ctx, StageSweep)
	_, child := StartSpan(c1, StageCapture)
	child.Attr("app", `Fa"st\a`)
	child.AttrInt("bytes", 1<<20)
	child.AttrBool("hit", false)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Name != w.Name ||
			g.StartNS != w.StartNS || g.DurNS != w.DurNS {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("span %d attrs: %d vs %d", i, len(g.Attrs), len(w.Attrs))
		}
		for j := range w.Attrs {
			if g.Attrs[j] != w.Attrs[j] {
				t.Errorf("span %d attr %d: got %+v, want %+v", i, j, g.Attrs[j], w.Attrs[j])
			}
		}
	}

	// Malformed input is rejected with a line number.
	if _, err := ReadSpansJSONL(strings.NewReader("{\"id\":1}\n")); err == nil {
		t.Error("nameless span accepted")
	}
}

// TestChromeTraceExport checks the trace-event envelope Perfetto
// expects: a traceEvents array of ph:"X" events with µs timestamps,
// children placed on their root span's track.
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx := WithTracer(context.Background(), tr)
	c1, root := StartSpan(ctx, StageExecute)
	_, child := StartSpan(c1, StageCapture)
	child.Attr("app", "Blast")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	rootID := tr.Spans()[1].ID
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
		if ev.TID != rootID {
			t.Errorf("event %q tid = %d, want root track %d", ev.Name, ev.TID, rootID)
		}
	}
	if doc.TraceEvents[0].Args["app"] != "Blast" {
		t.Errorf("child args = %v", doc.TraceEvents[0].Args)
	}
}

// TestTracerRecord: retroactive spans land under the current parent
// with the caller-supplied interval.
func TestTracerRecord(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx := WithTracer(context.Background(), tr)
	c1, root := StartSpan(ctx, StageExecute)
	start := time.Now().Add(-5 * time.Millisecond)
	tr.Record(c1, StageQueue, start, 5*time.Millisecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	q := spans[0]
	if q.Name != StageQueue {
		t.Fatalf("first span %q, want queue", q.Name)
	}
	if q.Parent != spans[1].ID {
		t.Errorf("queue parent = %d, want %d", q.Parent, spans[1].ID)
	}
	if q.DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("queue dur = %d", q.DurNS)
	}
}

// TestStageCost covers Add accumulation, Dominant selection and the
// descending Stages order the reports rely on.
func TestStageCost(t *testing.T) {
	var c StageCost
	if !c.IsZero() || c.Dominant() != "" {
		t.Fatalf("zero cost misbehaves: %+v", c)
	}
	c.Add(StageCost{CaptureNS: 100, ReplayNS: 40, TotalNS: 150})
	c.Add(StageCost{CaptureNS: 50, QueueNS: 10, TotalNS: 70})
	if c.CaptureNS != 150 || c.TotalNS != 220 {
		t.Errorf("add: %+v", c)
	}
	if got := c.Dominant(); got != StageCapture {
		t.Errorf("dominant = %q, want %q", got, StageCapture)
	}
	st := c.Stages()
	if st[0].Name != StageCapture || st[1].Name != StageReplay || st[2].Name != StageQueue {
		t.Errorf("stage order: %+v", st)
	}
	for i := 1; i < len(st); i++ {
		if st[i].NS > st[i-1].NS {
			t.Errorf("stages not descending at %d: %+v", i, st)
		}
	}
}

// BenchmarkSpanDisabled documents the cost of instrumented code with
// tracing off — the number that must stay at ~0 allocs.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, StageExecute)
		sp.AttrInt("seed", int64(i))
		sp.End()
	}
}

// BenchmarkSpanEnabled is the enabled-path counterpart for comparison.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(1<<20, nil)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, StageExecute)
		sp.AttrInt("seed", int64(i))
		sp.End()
	}
	_ = fmt.Sprint(tr.Len())
}
