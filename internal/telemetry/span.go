// Span-based "where does the time go" tracing.  A Tracer collects
// hierarchical spans — one per lifecycle stage of a simulation cell or
// HTTP request — with parent/child links carried through a
// context.Context, monotonic start/duration timestamps, and typed
// attributes.  Finished spans export two ways: a JSONL log (one
// SpanData per line) and a Chrome trace-event file that Perfetto and
// chrome://tracing load directly.  When a Registry is attached, every
// span End also feeds a per-stage latency histogram
// ("span.<name>.us"), so stage timings appear on /metrics without any
// extra plumbing.
//
// The whole subsystem is built to cost nothing when disabled: with no
// Tracer in the context, StartSpan returns the context unchanged and a
// nil *Span, and every method on a nil *Span is an allocation-free
// no-op (enforced by TestSpanDisabledAllocFree).  Instrumentation can
// therefore sit permanently on hot paths — the serve cached path, the
// scheduler worker loop — and only pay when a sweep or server was
// started with spans enabled.
package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Stage names: the fixed taxonomy of where a cell's wall time can go.
// StageCost fields, span names and the `bioperf5 spans` report all use
// this vocabulary, so one grep follows a stage across every surface.
const (
	StageRequest   = "serve.request"    // HTTP handler, decode to encode
	StageAdmission = "serve.admission"  // admission-semaphore acquire
	StageQueue     = "sched.queue"      // bounded-queue wait, submit to dequeue
	StageExecute   = "sched.execute"    // one job on a worker, dequeue to done
	StageAttempt   = "sched.attempt"    // one simulation attempt (retries repeat it)
	StageCompile   = "compile"          // kernel IR build + compile (memoized)
	StageCapture   = "trace.capture"    // functional execution recording a trace
	StageReplay    = "trace.replay"     // decoupled timing replay of a trace
	StageSim       = "sim.coupled"      // coupled functional+timing run (trace off)
	StageCacheRead = "cache.read"       // disk result-cache probe + trace-store read
	StageCacheWr   = "cache.write"      // disk result-cache write-back
	StageJournal   = "journal.append"   // completion-journal fsync'd append
	StageManifest  = "manifest.write"   // sweep manifest atomic write
	StageSweep     = "sweep"            // whole-sweep root span
	StageDispatch  = "cluster.dispatch" // one batch of cells sent to a remote worker
	StageSteal     = "cluster.steal"    // an idle runner stealing cells from another shard
	StageMerge     = "cluster.merge"    // per-shard results folded into the manifest
	StageBreaker   = "cluster.breaker"  // a circuit-breaker transition (open/reclose/quarantine)
)

// SpanBoundsUS is the bucket layout of the per-stage latency
// histograms, in microseconds: sub-millisecond cache probes up to
// multi-second cold captures.
func SpanBoundsUS() []uint64 {
	return []uint64{50, 250, 1_000, 5_000, 25_000, 100_000,
		500_000, 2_000_000, 10_000_000, 60_000_000}
}

// Attr is one typed span attribute.  Exactly one of Str/Int carries
// the value, selected by Kind.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
}

// AttrKind discriminates Attr values.
type AttrKind uint8

// Attribute kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrBool
)

// MarshalJSON renders the attribute as {"key": <value>} with the value
// typed, the shape the spans JSONL and the Chrome trace "args" use.
func (a Attr) MarshalJSON() ([]byte, error) {
	var v string
	switch a.Kind {
	case AttrInt:
		v = strconv.FormatInt(a.Int, 10)
	case AttrBool:
		v = strconv.FormatBool(a.Int != 0)
	default:
		b, err := json.Marshal(a.Str)
		if err != nil {
			return nil, err
		}
		v = string(b)
	}
	k, err := json.Marshal(a.Key)
	if err != nil {
		return nil, err
	}
	return []byte("{" + string(k) + ":" + v + "}"), nil
}

// UnmarshalJSON parses the {"key": <value>} shape back into a typed
// attribute (numbers become AttrInt, booleans AttrBool, the rest
// AttrString) — the round trip behind the spans report.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for k, v := range m {
		a.Key = k
		switch t := v.(type) {
		case bool:
			a.Kind = AttrBool
			if t {
				a.Int = 1
			}
		case float64:
			a.Kind = AttrInt
			a.Int = int64(t)
		case string:
			a.Kind = AttrString
			a.Str = t
		default:
			a.Kind = AttrString
			a.Str = fmt.Sprint(t)
		}
	}
	return nil
}

// Value returns the attribute's value as a display string.
func (a Attr) Value() string {
	switch a.Kind {
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	case AttrBool:
		return strconv.FormatBool(a.Int != 0)
	}
	return a.Str
}

// SpanData is one finished span, the JSONL line shape.  Times are
// nanoseconds relative to the tracer's epoch, read from the monotonic
// clock so durations are immune to wall-clock steps.
type SpanData struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Span is one in-flight stage measurement.  A nil *Span is the
// disabled form: every method is an allocation-free no-op.  A Span is
// owned by the goroutine that started it; End is safe to call once.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// DefaultSpanCapacity bounds a tracer at 2^19 retained spans (~50MB of
// JSONL); past it the newest spans are dropped and counted, so tracing
// an arbitrarily long serve run is memory-safe.
const DefaultSpanCapacity = 1 << 19

// Tracer collects finished spans.  All methods are safe for
// concurrent use.  A nil *Tracer is valid and means disabled.
type Tracer struct {
	reg   *Registry // optional; feeds span.<name>.us histograms
	epoch time.Time

	mu      sync.Mutex
	nextID  uint64
	spans   []SpanData
	cap     int
	dropped uint64
}

// NewTracer returns a tracer retaining at most capacity finished spans
// (capacity <= 0 gets DefaultSpanCapacity).  When reg is non-nil every
// span End also observes the span.<name>.us histogram in reg, putting
// per-stage latency distributions on /metrics.
func NewTracer(capacity int, reg *Registry) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{reg: reg, epoch: time.Now(), cap: capacity}
}

// ctxKey keys the span state in a context.
type ctxKey struct{}

// spanCtx is the context payload: which tracer, and which span is the
// current parent.
type spanCtx struct {
	tr     *Tracer
	parent uint64
}

// WithTracer returns a context carrying the tracer; spans started
// under it attach to tr.  A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: tr})
}

// TracerFrom extracts the tracer from ctx, or nil when spans are
// disabled.  The ctx.Value lookup is the one cost instrumented code
// pays on the disabled path.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	if sc, ok := ctx.Value(ctxKey{}).(spanCtx); ok {
		return sc.tr
	}
	return nil
}

// StartSpan begins a span named name under the current span in ctx.
// With no tracer in ctx it returns (ctx, nil) without allocating; the
// nil span's methods all no-op, so call sites need no branches.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok || sc.tr == nil {
		return ctx, nil
	}
	sp := sc.tr.start(name, sc.parent)
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: sc.tr, parent: sp.id}), sp
}

// start allocates one span.
func (t *Tracer) start(name string, parent uint64) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: parent, name: name, start: time.Now()}
}

// Record adds an already-measured interval as a span under the current
// span in ctx — the retroactive form used for queue wait, where the
// duration is known only after the fact.  No-op on a nil tracer.
func (t *Tracer) Record(ctx context.Context, name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	var parent uint64
	if ctx != nil {
		if sc, ok := ctx.Value(ctxKey{}).(spanCtx); ok {
			parent = sc.parent
		}
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	t.finish(SpanData{
		ID: id, Parent: parent, Name: name,
		StartNS: start.Sub(t.epoch).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
	})
}

// Attr adds a string attribute.  No-op on a nil span.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: value})
}

// AttrInt adds an integer attribute.  No-op on a nil span.
func (s *Span) AttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: value})
}

// AttrBool adds a boolean attribute.  No-op on a nil span.
func (s *Span) AttrBool(key string, value bool) {
	if s == nil {
		return
	}
	a := Attr{Key: key, Kind: AttrBool}
	if value {
		a.Int = 1
	}
	s.attrs = append(s.attrs, a)
}

// End finishes the span, recording its duration.  No-op on a nil span;
// a second End on the same span is ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.finish(SpanData{
		ID: s.id, Parent: s.parent, Name: s.name,
		StartNS: s.start.Sub(s.tr.epoch).Nanoseconds(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	})
}

// finish retains one finished span under the capacity bound and feeds
// the per-stage histogram.
func (t *Tracer) finish(d SpanData) {
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, d)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if t.reg != nil {
		t.reg.Histogram("span."+d.Name+".us", SpanBoundsUS()).
			Observe(uint64(d.DurNS / 1000))
	}
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many finished spans the capacity bound discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans in finish order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteJSONL writes the retained spans to w, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range t.Spans() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event ("X" = complete event).  Times
// are microseconds; pid/tid place the event on a track.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained spans in the Chrome trace-event
// JSON format — see WriteChromeTraceData.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceData(w, t.Spans())
}

// WriteChromeTraceData writes spans in the Chrome trace-event JSON
// format (the {"traceEvents": [...]} object form), loadable in
// Perfetto and chrome://tracing.  Each root span gets its own track
// (tid = root span ID), so concurrent cells render as parallel rows
// with their child stages nested by time.
func WriteChromeTraceData(w io.Writer, spans []SpanData) error {
	// Resolve each span's root so children land on their root's track.
	parent := make(map[uint64]uint64, len(spans))
	for _, d := range spans {
		parent[d.ID] = d.Parent
	}
	rootOf := func(id uint64) uint64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, d := range spans {
		ev := chromeEvent{
			Name: d.Name, Ph: "X",
			TS:  float64(d.StartNS) / 1000,
			Dur: float64(d.DurNS) / 1000,
			PID: 1, TID: rootOf(d.ID),
		}
		if len(d.Attrs) > 0 {
			ev.Args = make(map[string]string, len(d.Attrs))
			for _, a := range d.Attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		events = append(events, ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{events, "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a spans JSONL stream back into SpanData — the
// loader behind `bioperf5 spans` and the round-trip tests.
func ReadSpansJSONL(r io.Reader) ([]SpanData, error) {
	var out []SpanData
	dec := json.NewDecoder(r)
	for {
		var d SpanData
		if err := dec.Decode(&d); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("telemetry: bad span line %d: %w", len(out)+1, err)
		}
		if d.Name == "" {
			return out, fmt.Errorf("telemetry: span line %d: missing name", len(out)+1)
		}
		out = append(out, d)
	}
}
