// StageCost: the per-cell "where did the time go" breakdown.  Spans
// answer the question visually (Perfetto) and statistically
// (histograms); StageCost answers it structurally — a small value
// carried with every scheduler result, summed into SweepManifest
// profiles and /v1/cells responses, cheap enough to measure
// unconditionally (a handful of clock reads on the cold path only).
package telemetry

import "sort"

// StageCost is nanoseconds spent in each lifecycle stage of one cell
// (or one seed; costs add).  TotalNS is the stage's own wall time —
// the others are components of it, but need not sum exactly to it
// (scheduling gaps between stages are real time too).
type StageCost struct {
	QueueNS   int64 `json:"queue_ns,omitempty"`
	CompileNS int64 `json:"compile_ns,omitempty"`
	CaptureNS int64 `json:"capture_ns,omitempty"`
	ReplayNS  int64 `json:"replay_ns,omitempty"`
	SimNS     int64 `json:"sim_ns,omitempty"`
	CacheNS   int64 `json:"cache_ns,omitempty"`
	JournalNS int64 `json:"journal_ns,omitempty"`
	TotalNS   int64 `json:"total_ns,omitempty"`
}

// Add accumulates o into c, field by field.
func (c *StageCost) Add(o StageCost) {
	c.QueueNS += o.QueueNS
	c.CompileNS += o.CompileNS
	c.CaptureNS += o.CaptureNS
	c.ReplayNS += o.ReplayNS
	c.SimNS += o.SimNS
	c.CacheNS += o.CacheNS
	c.JournalNS += o.JournalNS
	c.TotalNS += o.TotalNS
}

// IsZero reports whether no stage recorded any time.
func (c StageCost) IsZero() bool {
	return c == StageCost{}
}

// Stages returns the component stages as (name, ns) pairs in
// descending ns order, using the package stage taxonomy.  TotalNS is
// not a component and is excluded.
func (c StageCost) Stages() []StageNS {
	out := []StageNS{
		{StageQueue, c.QueueNS},
		{StageCompile, c.CompileNS},
		{StageCapture, c.CaptureNS},
		{StageReplay, c.ReplayNS},
		{StageSim, c.SimNS},
		{StageCacheRead, c.CacheNS},
		{StageJournal, c.JournalNS},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].NS > out[j].NS })
	return out
}

// Dominant returns the component stage with the most time, or "" when
// nothing was recorded.
func (c StageCost) Dominant() string {
	s := c.Stages()
	if len(s) == 0 || s[0].NS == 0 {
		return ""
	}
	return s[0].Name
}

// StageNS is one (stage, nanoseconds) pair of a cost breakdown.
type StageNS struct {
	Name string `json:"stage"`
	NS   int64  `json:"ns"`
}
