package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 0; i < 5; i++ {
		b.Append(TraceEvent{Seq: uint64(i), Op: "addi"})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	if b.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", b.Dropped())
	}
	ev := b.Events()
	for i, e := range ev {
		if want := uint64(i + 2); e.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Errorf("after Reset: len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	b := NewTraceBuffer(8)
	b.Append(TraceEvent{Seq: 0, PC: 1, Op: "lwz", Fetch: 1, Dispatch: 7, Issue: 8, Complete: 10, EA: 0x100, MemLat: 2})
	b.Append(TraceEvent{Seq: 1, PC: 2, Op: "bc", Fetch: 1, Dispatch: 7, Issue: 8, Complete: 11, Flush: "mispredict"})
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var e TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Seq != uint64(n) {
			t.Errorf("line %d: seq = %d", n, e.Seq)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("lines = %d, want 2", n)
	}
}
