package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// TraceEvent is one instruction's pipeline lifecycle as seen by the
// timing model: the cycle it occupied each stage, and — for the
// instructions that disturb the pipeline — why the front end was
// redirected and which stall-stack bucket its completion gap was
// charged to.  Events serialize as one JSON object per line (JSONL).
type TraceEvent struct {
	Seq      uint64 `json:"seq"`             // dynamic instruction number (0-based)
	PC       int    `json:"pc"`              // static instruction index
	Op       string `json:"op"`              // mnemonic
	Fetch    uint64 `json:"fetch"`           // fetch cycle
	Dispatch uint64 `json:"dispatch"`        // dispatch cycle
	Issue    uint64 `json:"issue"`           // issue cycle
	Complete uint64 `json:"complete"`        // completion cycle
	EA       uint64 `json:"ea,omitempty"`    // loads/stores: effective address
	MemLat   uint64 `json:"mlat,omitempty"`  // loads: load-to-use latency charged
	Flush    string `json:"flush,omitempty"` // redirect cause this instruction raised
	Stall    string `json:"stall,omitempty"` // stall-stack bucket charged at completion
}

// TraceBuffer is a bounded ring of TraceEvents: when full, the oldest
// event is overwritten and counted as dropped, so tracing an
// arbitrarily long run is memory-safe.  It is safe for concurrent use.
type TraceBuffer struct {
	mu      sync.Mutex
	ring    []TraceEvent
	start   int // index of the oldest event
	count   int
	dropped uint64
}

// DefaultTraceCapacity bounds a trace at one million events (~100MB of
// JSONL), enough for every tier-1 kernel invocation at scale 1.
const DefaultTraceCapacity = 1 << 20

// NewTraceBuffer returns a ring holding at most capacity events
// (capacity <= 0 gets DefaultTraceCapacity).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceBuffer{ring: make([]TraceEvent, 0, capacity)}
}

// Append records one event, evicting the oldest when full.
func (b *TraceBuffer) Append(e TraceEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count < cap(b.ring) {
		b.ring = append(b.ring, e)
		b.count++
		return
	}
	b.ring[b.start] = e
	b.start = (b.start + 1) % cap(b.ring)
	b.dropped++
}

// Len returns the number of retained events.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Dropped returns how many events were evicted by the ring bound.
func (b *TraceBuffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Events returns the retained events oldest-first.
func (b *TraceBuffer) Events() []TraceEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceEvent, 0, b.count)
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(b.start+i)%cap(b.ring)])
	}
	return out
}

// Reset empties the buffer, keeping its capacity.
func (b *TraceBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring = b.ring[:0]
	b.start, b.count, b.dropped = 0, 0, 0
}

// WriteJSONL writes the retained events to w, one JSON object per
// line, oldest first.
func (b *TraceBuffer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, e := range b.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
