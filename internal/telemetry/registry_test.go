package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.cycles")
	c.Add(3)
	c.Add(4)
	if got := r.Counter("cpu.cycles").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	c.Set(100)
	if got := c.Value(); got != 100 {
		t.Errorf("after Set, counter = %d, want 100", got)
	}
	g := r.Gauge("cpu.ipc")
	g.Set(1.25)
	if got := r.Gauge("cpu.ipc").Value(); got != 1.25 {
		t.Errorf("gauge = %v, want 1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{2, 13, 230})
	for _, v := range []uint64{1, 2, 3, 13, 230, 231, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	s := h.snapshot()
	want := map[uint64]uint64{2: 2, 13: 2, 230: 1}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if s.Sum != 1+2+3+13+230+231+1000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestLabeledCounterTop(t *testing.T) {
	r := NewRegistry()
	l := r.Labeled("branch.mispredict.pc")
	l.Add("12", 5)
	l.Add("7", 9)
	l.Add("3", 9)
	l.Add("12", 1)
	top := l.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// Ties break by label; counts descend.
	if top[0].Label != "3" || top[0].Count != 9 || top[1].Label != "7" {
		t.Errorf("top = %v", top)
	}
	if l.Value("12") != 6 {
		t.Errorf("value(12) = %d, want 6", l.Value("12"))
	}
}

func TestSnapshotJSONAndFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.rate").Set(0.5)
	r.Histogram("c.lat", nil).Observe(13)
	r.Labeled("d.pc").Add("4", 1)
	s := r.Snapshot(10)

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.count"] != 2 || back.Gauges["b.rate"] != 0.5 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if back.Histograms["c.lat"].Count != 1 {
		t.Errorf("round-trip histogram: %+v", back.Histograms["c.lat"])
	}

	text := s.Format()
	for _, want := range []string{"a.count", "b.rate", "c.lat", "d.pc{4}"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Add(1)
				r.Histogram("h", nil).Observe(uint64(j))
				r.Labeled("l").Add("x", 1)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Labeled("l").Value("x"); got != 8000 {
		t.Errorf("labeled = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
