// Package telemetry is the observability layer of the simulator: a
// lightweight metrics registry that the model packages (cpu, branch,
// cache, mem, perf) publish into, and a bounded pipeline event trace
// (trace.go).  The registry is the single source of truth behind the
// CLI's `stats` output and the `-json` experiment encodings — a module
// never formats its own numbers twice.
//
// All types are safe for concurrent use.  Metric names are flat
// dot-separated strings ("cpu.branch.mispredict.direction"); labeled
// counters add one free-form label dimension (for example a per-PC
// branch mispredict count keyed by the static instruction index).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics.  The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labeled  map[string]*LabeledCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labeled:  make(map[string]*LabeledCounter),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use.  Bounds must be
// ascending; values above the last bound land in an implicit overflow
// bucket.  Later calls with different bounds return the existing
// histogram unchanged.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Labeled returns the labeled counter registered under name, creating
// it on first use.
func (r *Registry) Labeled(name string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.labeled[name]
	if l == nil {
		l = &LabeledCounter{m: make(map[string]uint64)}
		r.labeled[name] = l
	}
	return l
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Set overwrites the counter (used when mirroring an externally
// accumulated count, e.g. a cpu.Counters field, into the registry).
func (c *Counter) Set(v uint64) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-write-wins float64 metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets (upper bounds,
// inclusive) plus an overflow bucket, tracking count, sum, min and max.
type Histogram struct {
	mu       sync.Mutex
	bounds   []uint64
	counts   []uint64 // len(bounds)+1; last is overflow
	count    uint64
	sum      uint64
	min, max uint64
}

// DefaultLatencyBounds is a bucket layout suited to pipeline latencies
// in cycles: it resolves the L1/L2/memory plateaus of the POWER5
// hierarchy and the flush penalties.
func DefaultLatencyBounds() []uint64 {
	return []uint64{1, 2, 4, 8, 13, 16, 24, 32, 64, 128, 230, 512}
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds (nil gets DefaultLatencyBounds).
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average observation (zero when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// LabeledCounter is a counter with one free-form label dimension.
type LabeledCounter struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Add increments the count for label by delta.
func (l *LabeledCounter) Add(label string, delta uint64) {
	l.mu.Lock()
	l.m[label] += delta
	l.mu.Unlock()
}

// Value returns the count for label.
func (l *LabeledCounter) Value(label string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[label]
}

// Top returns the n largest labels in decreasing order of count (ties
// by label for determinism).
func (l *LabeledCounter) Top(n int) []LabelCount {
	l.mu.Lock()
	out := make([]LabelCount, 0, len(l.m))
	for k, v := range l.m {
		out = append(out, LabelCount{Label: k, Count: v})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LabelCount is one labeled counter cell.
type LabelCount struct {
	Label string `json:"label"`
	Count uint64 `json:"count"`
}

// Bucket is one histogram bucket in a snapshot; Le is the inclusive
// upper bound.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serializable state of a histogram.  Overflow
// counts observations above the last bucket bound.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      uint64   `json:"sum"`
	Min      uint64   `json:"min"`
	Max      uint64   `json:"max"`
	Mean     float64  `json:"mean"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow uint64   `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time, JSON-serializable copy of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Labeled    map[string][]LabelCount      `json:"labeled,omitempty"`
}

// Snapshot copies the registry's current state.  Labeled counters are
// truncated to their topK largest cells (topK <= 0 keeps everything).
func (r *Registry) Snapshot(topK int) Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(r.labeled) > 0 {
		s.Labeled = make(map[string][]LabelCount, len(r.labeled))
		for k, l := range r.labeled {
			s.Labeled[k] = l.Top(topK)
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:    h.count,
		Sum:      h.sum,
		Min:      h.min,
		Max:      h.max,
		Overflow: h.counts[len(h.counts)-1],
	}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: b, Count: h.counts[i]})
		}
	}
	return s
}

// Format renders the snapshot as sorted human-readable lines, the text
// form behind `bioperf5 stats`.
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-44s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-44s %.4f\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "%-44s count=%d mean=%.2f min=%d max=%d\n",
			k, h.Count, h.Mean, h.Min, h.Max)
	}
	names = names[:0]
	for k := range s.Labeled {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		for _, lc := range s.Labeled[k] {
			fmt.Fprintf(&b, "%-44s %d\n", k+"{"+lc.Label+"}", lc.Count)
		}
	}
	return b.String()
}
