// Package mem provides the sparse, big-endian simulated memory used by
// the functional machine and the cache model.  PowerPC is big-endian,
// and the loaders/stores here follow that convention so memory images
// match what a real POWER5 would see.
package mem

import (
	"fmt"

	"bioperf5/internal/telemetry"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse paged byte-addressable memory.  Pages are allocated
// on first touch; reads of untouched memory return zero.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns n bytes starting at addr (big-endian order is a property
// of the multi-byte accessors, not of Read, which is a raw byte copy).
func (m *Memory) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// Write copies b into memory starting at addr.
func (m *Memory) Write(addr uint64, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint64(i), v)
	}
}

// ReadUint reads an unsigned big-endian integer of size 1, 2, 4 or 8.
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v = v<<8 | uint64(m.LoadByte(addr+uint64(i)))
	}
	return v
}

// WriteUint writes an unsigned big-endian integer of size 1, 2, 4 or 8.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	for i := size - 1; i >= 0; i-- {
		m.StoreByte(addr+uint64(i), byte(v))
		v >>= 8
	}
}

// ReadInt reads a sign-extended big-endian integer of size 1, 2, 4 or 8.
func (m *Memory) ReadInt(addr uint64, size int) int64 {
	u := m.ReadUint(addr, size)
	shift := uint(64 - 8*size)
	return int64(u<<shift) >> shift
}

// WriteInt writes the low size bytes of v big-endian.
func (m *Memory) WriteInt(addr uint64, size int, v int64) {
	m.WriteUint(addr, size, uint64(v))
}

// Footprint returns the number of bytes in allocated pages.
func (m *Memory) Footprint() int { return len(m.pages) * pageSize }

// PublishTo mirrors the memory image's footprint into reg.
func (m *Memory) PublishTo(reg *telemetry.Registry) {
	reg.Gauge("mem.pages").Set(float64(len(m.pages)))
	reg.Gauge("mem.footprint_bytes").Set(float64(m.Footprint()))
}

// Layout hands out non-overlapping regions of the address space; it is
// how kernel marshaling carves out argument buffers, matrices and the
// stack without clashing.
type Layout struct {
	next  uint64
	limit uint64
}

// NewLayout returns a layout allocating addresses in [base, base+size).
func NewLayout(base, size uint64) *Layout {
	return &Layout{next: base, limit: base + size}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the base address.  It panics when the region is exhausted, which in
// this codebase indicates a programming error in a kernel marshaller.
func (l *Layout) Alloc(n uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	addr := (l.next + align - 1) &^ (align - 1)
	if addr+n > l.limit {
		panic(fmt.Sprintf("mem: layout exhausted: need %d bytes at %#x, limit %#x", n, addr, l.limit))
	}
	l.next = addr + n
	return addr
}

// Int64Slice writes vals as consecutive big-endian 64-bit integers at
// addr (a convenience for kernel argument marshaling).
func (m *Memory) WriteInt64Slice(addr uint64, vals []int64) {
	for i, v := range vals {
		m.WriteInt(addr+uint64(8*i), 8, v)
	}
}

// ReadInt64Slice reads n consecutive big-endian 64-bit integers.
func (m *Memory) ReadInt64Slice(addr uint64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.ReadInt(addr+uint64(8*i), 8)
	}
	return out
}

// WriteInt32Slice writes vals as consecutive big-endian 32-bit integers.
func (m *Memory) WriteInt32Slice(addr uint64, vals []int32) {
	for i, v := range vals {
		m.WriteInt(addr+uint64(4*i), 4, int64(v))
	}
}

// ReadInt32Slice reads n consecutive big-endian 32-bit integers.
func (m *Memory) ReadInt32Slice(addr uint64, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(m.ReadInt(addr+uint64(4*i), 4))
	}
	return out
}

// StoreBytes writes a byte slice (e.g. an encoded sequence) at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) { m.Write(addr, b) }
