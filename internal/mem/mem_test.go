package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.LoadByte(0x12345); got != 0 {
		t.Errorf("untouched byte = %d, want 0", got)
	}
	if got := m.ReadUint(0xFFFF0, 8); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(42, 0xAB)
	if got := m.LoadByte(42); got != 0xAB {
		t.Errorf("got %#x, want 0xAB", got)
	}
}

func TestBigEndianLayout(t *testing.T) {
	m := New()
	m.WriteUint(0x100, 4, 0x11223344)
	want := []byte{0x11, 0x22, 0x33, 0x44}
	if got := m.Read(0x100, 4); !bytes.Equal(got, want) {
		t.Errorf("bytes = %x, want %x (big-endian)", got, want)
	}
}

func TestSignExtension(t *testing.T) {
	m := New()
	m.WriteInt(0, 2, -3)
	if got := m.ReadInt(0, 2); got != -3 {
		t.Errorf("ReadInt 2 = %d, want -3", got)
	}
	if got := m.ReadUint(0, 2); got != 0xFFFD {
		t.Errorf("ReadUint 2 = %#x, want 0xfffd", got)
	}
	m.WriteInt(8, 1, -128)
	if got := m.ReadInt(8, 1); got != -128 {
		t.Errorf("ReadInt 1 = %d, want -128", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	m.WriteUint(addr, 8, 0x0102030405060708)
	if got := m.ReadUint(addr, 8); got != 0x0102030405060708 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint32, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		m.WriteUint(uint64(addr), size, v)
		return m.ReadUint(uint64(addr), size) == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint16, v int32) bool {
		m.WriteInt(uint64(addr), 4, int64(v))
		return m.ReadInt(uint64(addr), 4) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	m := New()
	vals64 := []int64{1, -2, 1 << 40, -(1 << 40)}
	m.WriteInt64Slice(0x1000, vals64)
	got64 := m.ReadInt64Slice(0x1000, len(vals64))
	for i := range vals64 {
		if got64[i] != vals64[i] {
			t.Errorf("int64[%d] = %d, want %d", i, got64[i], vals64[i])
		}
	}
	vals32 := []int32{0, -1, 1 << 30, -(1 << 30)}
	m.WriteInt32Slice(0x2000, vals32)
	got32 := m.ReadInt32Slice(0x2000, len(vals32))
	for i := range vals32 {
		if got32[i] != vals32[i] {
			t.Errorf("int32[%d] = %d, want %d", i, got32[i], vals32[i])
		}
	}
}

func TestWriteRead(t *testing.T) {
	m := New()
	data := []byte("ACDEFGHIKLMNPQRSTVWY")
	m.Write(0x500, data)
	if got := m.Read(0x500, len(data)); !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Errorf("empty footprint = %d", m.Footprint())
	}
	m.StoreByte(0, 1)
	m.StoreByte(pageSize*10, 1)
	if got := m.Footprint(); got != 2*pageSize {
		t.Errorf("footprint = %d, want %d", got, 2*pageSize)
	}
	// Reads must not allocate.
	m.LoadByte(pageSize * 20)
	if got := m.Footprint(); got != 2*pageSize {
		t.Errorf("footprint after read = %d, want %d", got, 2*pageSize)
	}
}

func TestLayoutAlloc(t *testing.T) {
	l := NewLayout(0x1000, 0x1000)
	a := l.Alloc(10, 8)
	if a != 0x1000 {
		t.Errorf("first alloc = %#x", a)
	}
	b := l.Alloc(1, 64)
	if b%64 != 0 || b < a+10 {
		t.Errorf("second alloc = %#x, want 64-aligned beyond %#x", b, a+10)
	}
}

func TestLayoutExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	l := NewLayout(0, 16)
	l.Alloc(32, 1)
}
