#!/usr/bin/env bash
# serve_smoke.sh — boot `bioperf5 serve`, exercise every endpoint once,
# and shut it down with SIGTERM.  The gates: /readyz comes up, a single
# cell and a streamed batch both succeed, the experiments endpoint is
# byte-identical to `bioperf5 run -json`, /metrics exposes the server.*
# family plus the span.<stage>.us histograms, the -pprof flag mounts
# live profiling, and SIGTERM drains cleanly (exit 0, drain message on
# stderr) while flushing the request span log.  A follow-up sweep with
# -spans must emit a valid spans.jsonl + Perfetto-loadable trace.json
# (validated with jq and round-tripped through `bioperf5 spans`).
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
port=18077
base="http://127.0.0.1:$port"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/bioperf5" ./cmd/bioperf5

echo "== start server (pprof + request spans on)"
"$work/bioperf5" serve -addr "127.0.0.1:$port" -cache-dir "$work/cache" \
  -pprof -spans "$work/srv-spans" \
  2> "$work/serve.stderr" &
pid=$!

echo "== poll /readyz"
ready=0
for _ in $(seq 1 50); do
  if curl -fsS "$base/readyz" > /dev/null 2>&1; then ready=1; break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$work/serve.stderr" >&2
    exit 1
  fi
  sleep 0.2
done
if [ "$ready" -ne 1 ]; then
  echo "FAIL: /readyz never came up" >&2
  exit 1
fi
curl -fsS "$base/healthz" > /dev/null

echo "== single cell"
curl -fsS -X POST "$base/v1/cells" -d \
  '{"app":"Fasta","variant":"combination","fxus":3,"btac_entries":8,"scale":1,"seeds":[1]}' \
  > "$work/cell.json"
python3 - "$work/cell.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))
assert c["schema"] == "bioperf5/v1", c.get("schema")
assert c["app"] == "Fasta" and c["variant"] == "combination", (c["app"], c["variant"])
assert c["stats"]["aggregate"]["counters"]["Cycles"] > 0
PY

echo "== batch (3 cells, JSONL stream)"
curl -fsS -X POST "$base/v1/cells:batch" -d \
  '{"cells":[{"app":"Fasta","seeds":[1]},{"app":"Blast","seeds":[1]},{"app":"Fasta","seeds":[1]}]}' \
  > "$work/batch.jsonl"
python3 - "$work/batch.jsonl" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 3, len(lines)
assert sorted(l["index"] for l in lines) == [0, 1, 2]
assert all(l["status"] == "ok" for l in lines), lines
PY

echo "== experiments endpoint is byte-identical to the CLI"
curl -fsS "$base/v1/experiments/fig3?scale=1&seeds=1" > "$work/fig3.http.json"
"$work/bioperf5" run fig3 -json -scale 1 -seeds 1 > "$work/fig3.cli.json"
if ! cmp -s "$work/fig3.http.json" "$work/fig3.cli.json"; then
  echo "FAIL: served fig3 differs from CLI fig3" >&2
  diff -u "$work/fig3.cli.json" "$work/fig3.http.json" | head -40 >&2
  exit 1
fi

echo "== /metrics exposes server.*, sched.* and span.* families"
curl -fsS "$base/metrics" > "$work/metrics.txt"
for want in \
  "# HELP server_requests Registry metric server.requests." \
  "# TYPE server_requests counter" \
  "server_cells_admitted" \
  "server_request_latency_us_bucket" \
  "sched_jobs_computed" \
  "span_serve_request_us_count" \
  "span_sched_execute_us_count"; do
  if ! grep -q "$want" "$work/metrics.txt"; then
    echo "FAIL: /metrics missing \"$want\"" >&2
    exit 1
  fi
done

echo "== pprof surface is mounted (and serves a real profile index)"
curl -fsS "$base/debug/pprof/" > "$work/pprof-index.html"
grep -q goroutine "$work/pprof-index.html"
curl -fsS "$base/debug/pprof/cmdline" > /dev/null
curl -fsS "$base/debug/pprof/heap?debug=1" > "$work/pprof-heap.txt"
grep -q "heap profile" "$work/pprof-heap.txt"

echo "== SIGTERM drains cleanly"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
  echo "FAIL: server exited $status on SIGTERM" >&2
  cat "$work/serve.stderr" >&2
  exit 1
fi
if ! grep -q "drained cleanly" "$work/serve.stderr"; then
  echo "FAIL: no drain message on stderr" >&2
  cat "$work/serve.stderr" >&2
  exit 1
fi

echo "== server flushed its request span log at shutdown"
if ! grep -q "wrote .* spans to" "$work/serve.stderr"; then
  echo "FAIL: no span-flush message on stderr" >&2
  cat "$work/serve.stderr" >&2
  exit 1
fi
jq -e -s 'length > 0 and (map(select(.name == "serve.request")) | length) >= 5
          and all(.name != null and .dur_ns >= 0)' \
  "$work/srv-spans/spans.jsonl" > /dev/null
jq -e '.traceEvents | length > 0 and all(.ph == "X")' \
  "$work/srv-spans/trace.json" > /dev/null

echo "== sweep -spans emits a loadable span log + Perfetto trace"
"$work/bioperf5" sweep -apps Fasta -fxus 2,3 -btac off -variants original \
  -seeds 1 -workers 2 -spans "$work/sweep-spans" > "$work/sweep.out"
if ! grep -q "dominant stage:" "$work/sweep.out"; then
  echo "FAIL: sweep summary line has no dominant stage" >&2
  cat "$work/sweep.out" >&2
  exit 1
fi
# jq gate: every span line is named, durations are sane, the lifecycle
# stages are present, and exactly one sweep root exists.
jq -e -s '
  length > 0
  and all(.name != null and .dur_ns >= 0)
  and ([.[] | select(.name == "sweep")] | length) == 1
  and ([.[] | select(.name == "sched.execute")] | length) > 0
  and ([.[] | select(.name == "trace.capture")] | length) > 0' \
  "$work/sweep-spans/spans.jsonl" > /dev/null
# The trace-event file is one JSON object Perfetto can load: complete
# ("X") events with µs timestamps, one per span.
spans_n=$(wc -l < "$work/sweep-spans/spans.jsonl")
jq -e --argjson n "$spans_n" \
  '.traceEvents | length == $n and all(.ph == "X" and .pid == 1)' \
  "$work/sweep-spans/trace.json" > /dev/null
# Go round trip: `bioperf5 spans` re-parses the JSONL through
# telemetry.ReadSpansJSONL and re-exports the Chrome form.
"$work/bioperf5" spans -chrome "$work/sweep-spans/trace2.json" \
  "$work/sweep-spans/spans.jsonl" > "$work/spans.report"
grep -q "trace.capture" "$work/spans.report"
jq -e '.traceEvents | length > 0' "$work/sweep-spans/trace2.json" > /dev/null

echo "PASS: serve smoke — cell, batch, byte-identical experiments, metrics, pprof, spans, clean drain"
