#!/usr/bin/env bash
# resume_smoke.sh — kill a sweep mid-run with SIGKILL, resume it with
# -resume, and assert the resumed manifest is identical to an
# uninterrupted run's.  This is the crash-safety gate the journal and
# the atomic cache/manifest writes exist for: no amount of violence at
# the wrong moment may change the science.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/bioperf5" ./cmd/bioperf5

# Sweep sized so ~2s lands mid-run (roughly 6-7s uninterrupted).
sweep_args=(sweep -apps Clustalw,Fasta -fxus 2,3,4 -btac off,8
            -variants original -seeds 1 -scale 3 -workers 2)

# canon strips the environment-dependent fields (timing, scheduler
# counters) from a manifest; determinism is asserted on the rest.
canon() {
  python3 - "$1" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
m.pop("elapsed_ms", None)
m.pop("scheduler", None)
m.pop("profile", None)
print(json.dumps(m, sort_keys=True, indent=1))
PY
}

echo "== baseline: uninterrupted run"
"$work/bioperf5" "${sweep_args[@]}" -resume "$work/base" -json > /dev/null

echo "== interrupted run: SIGKILL after 2s"
"$work/bioperf5" "${sweep_args[@]}" -resume "$work/int" -json > /dev/null &
pid=$!
sleep 2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

journaled=0
if [ -f "$work/int/journal.jsonl" ]; then
  journaled=$(wc -l < "$work/int/journal.jsonl")
fi
echo "   journal holds $journaled completed cells at the point of death"
if [ -f "$work/int/manifest.json" ]; then
  echo "FAIL: killed run left a manifest behind" >&2
  exit 1
fi

echo "== resume"
"$work/bioperf5" "${sweep_args[@]}" -resume "$work/int" -json > "$work/resumed.json"

canon "$work/base/manifest.json" > "$work/base.canon"
canon "$work/int/manifest.json"  > "$work/int.canon"
if ! diff -u "$work/base.canon" "$work/int.canon"; then
  echo "FAIL: resumed manifest differs from uninterrupted run" >&2
  exit 1
fi

# If the kill landed after any cell completed, the resumed run must
# have simulated strictly fewer cells than the baseline run did.
base_computed=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["scheduler"]["computed"])' "$work/base/manifest.json")
res_computed=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["scheduler"]["computed"])' "$work/int/manifest.json")
res_resumed=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["scheduler"]["journal_resumed"])' "$work/int/manifest.json")
echo "   baseline simulated $base_computed cells; resume simulated $res_computed, skipped $res_resumed via the journal"
if [ "$journaled" -gt 0 ]; then
  if [ "$res_computed" -ge "$base_computed" ]; then
    echo "FAIL: resume re-simulated already-journaled cells" >&2
    exit 1
  fi
  if [ "$res_resumed" -eq 0 ]; then
    echo "FAIL: resume skipped nothing despite a non-empty journal" >&2
    exit 1
  fi
fi

echo "PASS: resumed manifest identical to uninterrupted run"
