#!/usr/bin/env bash
# bench_trace.sh — the capture-once/replay-many performance gate.  Runs
# the FXU x BTAC factorial benchmark with tracing off (six coupled
# functional+timing runs) and with tracing on (one capture, six
# replays), emits BENCH_sweep_trace.json, and fails unless replay is
# strictly faster.  The replay-equivalence tests guarantee the numbers
# are identical either way; this gate guarantees the default policy is
# also the cheaper one.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_sweep_trace.json}"
bench_out="$(mktemp)"
trap 'rm -rf "$bench_out"' EXIT

echo "== benchmarking sweep: -trace=off vs default (capture-once/replay-many)"
go test -run '^$' -bench 'BenchmarkSweepTrace(Off|Replay)$' -benchtime=5x -count=3 . \
  | tee "$bench_out"

python3 - "$bench_out" "$out" <<'PY'
import json, re, sys

lines = open(sys.argv[1]).read().splitlines()
samples = {"off": [], "replay": []}
for line in lines:
    m = re.match(r"BenchmarkSweepTrace(Off|Replay)\S*\s+\d+\s+([\d.]+) ns/op", line)
    if m:
        samples["off" if m.group(1) == "Off" else "replay"].append(float(m.group(2)))

if not samples["off"] or not samples["replay"]:
    sys.exit("FAIL: benchmark output missing SweepTraceOff/SweepTraceReplay samples")

# Best-of-N per side: robust against one noisy CI sample on either side.
off = min(samples["off"])
replay = min(samples["replay"])
speedup = off / replay

report = {
    "benchmark": "sweep_trace",
    "cell": "Fasta/original seed 1 scale 1",
    "factorial": "FXUs {2,3,4} x BTAC {off,8}",
    "capture_per_cell_ns": off,
    "replay_ns": replay,
    "speedup": round(speedup, 3),
    "samples": samples,
}
with open(sys.argv[2], "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")

print(f"   capture-per-cell: {off/1e6:.1f} ms/factorial")
print(f"   capture-once/replay-many: {replay/1e6:.1f} ms/factorial")
print(f"   speedup: {speedup:.2f}x")
if speedup <= 1.0:
    sys.exit(f"FAIL: trace replay is not faster than capture-per-cell ({speedup:.2f}x)")
print("PASS: trace replay beats capture-per-cell")
PY
