#!/usr/bin/env bash
# cluster_smoke.sh — stand up a real distributed sweep on the loopback:
# a cache hub, two `bioperf5 serve` workers pointed at it, and a
# coordinator sharding the factorial across them.  Mid-run, one worker
# takes SIGKILL.  The gates: the merged manifest is byte-identical to a
# single-node run despite the death; a second distributed run against
# two FRESH workers (empty local caches, same hub) is served almost
# entirely by the shared cache tier; and the hub's /metrics shows the
# server.cache.* traffic that service implies.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/bioperf5" ./cmd/bioperf5

hub_port=18090
w1_port=18091
w2_port=18092
w3_port=18093
w4_port=18094
hub="http://127.0.0.1:$hub_port"

# Sweep sized so ~2s lands mid-run on this fleet.
sweep_args=(sweep -apps Clustalw,Fasta -fxus 2,3,4 -btac off,8
            -variants original -seeds 1 -scale 3)

# canon strips the operational fields (timing, scheduler and cluster
# counters, the stage profile); determinism is asserted on the rest.
canon() {
  python3 - "$1" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
for k in ("elapsed_ms", "scheduler", "cluster", "profile"):
    m.pop(k, None)
print(json.dumps(m, sort_keys=True, indent=1))
PY
}

start_worker() { # port cache-dir [extra flags...]
  local port="$1" dir="$2"; shift 2
  "$work/bioperf5" serve -addr "127.0.0.1:$port" -cache-dir "$dir" "$@" \
    2>> "$work/serve-$port.stderr" &
  pids+=($!)
  disown $! # quiet bash's "Killed" notices when the test shoots a worker
}

wait_ready() { # port...
  for port in "$@"; do
    local ok=0
    for _ in $(seq 1 50); do
      if curl -fsS "http://127.0.0.1:$port/readyz" > /dev/null 2>&1; then ok=1; break; fi
      sleep 0.2
    done
    if [ "$ok" -ne 1 ]; then
      echo "FAIL: worker on :$port never became ready" >&2
      cat "$work/serve-$port.stderr" >&2 || true
      exit 1
    fi
  done
}

echo "== single-node reference"
"$work/bioperf5" "${sweep_args[@]}" -workers 2 -json > "$work/ref.json"

echo "== start hub + two workers sharing it"
start_worker "$hub_port" "$work/hub-cache"
wait_ready "$hub_port"
start_worker "$w1_port" "$work/w1-cache" -cache-upstream "$hub"
start_worker "$w2_port" "$work/w2-cache" -cache-upstream "$hub"
wait_ready "$w1_port" "$w2_port"
w2_pid="${pids[-1]}"

echo "== distributed run 1: SIGKILL worker 2 after 2s"
"$work/bioperf5" "${sweep_args[@]}" \
  -workers "http://127.0.0.1:$w1_port,http://127.0.0.1:$w2_port" \
  -json > "$work/d1.json" 2> "$work/d1.stderr" &
coord=$!
sleep 2
kill -9 "$w2_pid" 2>/dev/null || true
if ! wait "$coord"; then
  echo "FAIL: coordinator exited non-zero after losing a worker" >&2
  cat "$work/d1.stderr" >&2
  exit 1
fi

canon "$work/ref.json" > "$work/ref.canon"
canon "$work/d1.json"  > "$work/d1.canon"
if ! diff -u "$work/ref.canon" "$work/d1.canon"; then
  echo "FAIL: distributed manifest differs from single-node reference" >&2
  exit 1
fi
python3 - "$work/d1.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))["cluster"]
assert c["workers"] == 2, c
assert c["workers_lost"] == 1, f"expected the killed worker counted dead: {c}"
assert c["failed_cells"] == 0, f"survivor should finish every cell: {c}"
assert c["completed"] == c["cells"], c
print(f"   survived the kill: {c['cells']} cells, {c['stolen']} stolen, "
      f"{c['redispatched']} re-dispatched, {c['duplicates']} duplicate results dropped")
PY
echo "   merged manifest byte-identical to single-node despite the kill"

echo "== distributed run 2: fresh workers, warm shared cache"
start_worker "$w3_port" "$work/w3-cache" -cache-upstream "$hub"
start_worker "$w4_port" "$work/w4-cache" -cache-upstream "$hub"
wait_ready "$w3_port" "$w4_port"
"$work/bioperf5" "${sweep_args[@]}" \
  -workers "http://127.0.0.1:$w3_port,http://127.0.0.1:$w4_port" \
  -json > "$work/d2.json"

canon "$work/d2.json" > "$work/d2.canon"
if ! diff -u "$work/ref.canon" "$work/d2.canon"; then
  echo "FAIL: warm-cache manifest differs from single-node reference" >&2
  exit 1
fi
python3 - "$work/d2.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))["cluster"]
rate = (c["cache_hits"] + c["resumed"]) / c["cells"]
print(f"   warm run served {c['cache_hits']} of {c['cells']} cells from the shared tier ({rate:.0%})")
assert rate >= 0.9, f"shared cache served only {rate:.0%}, want >= 90%: {c}"
PY

echo "== hub metrics reflect the traffic"
curl -fsS "$hub/metrics" > "$work/hub.metrics"
python3 - "$work/hub.metrics" <<'PY'
import sys
vals = {}
for line in open(sys.argv[1]):
    if line.startswith("#") or not line.strip():
        continue
    name, _, val = line.rpartition(" ")
    vals[name.strip()] = float(val)
hits = vals.get("server_cache_hits", 0)
puts = vals.get("server_cache_puts", 0)
assert puts > 0, f"hub accepted no cache entries: {vals}"
assert hits > 0, f"hub served no cache entries: {vals}"
print(f"   hub: {puts:.0f} entries uploaded, {hits:.0f} served back")
PY

echo "PASS: distributed sweep byte-identical under worker death; warm fleet served by the shared cache"
