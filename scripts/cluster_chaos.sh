#!/usr/bin/env bash
# cluster_chaos.sh — run a real distributed sweep with the coordinator's
# transport under full network chaos (refused dials, added latency,
# injected 503s, mid-stream cuts, corrupted JSONL lines, duplicated
# batch items, and a blackout window on one worker), then damage a
# finished local sweep's state directory and put `bioperf5 fsck`
# through its paces.  The gates:
#
#   1. the chaotic distributed manifest is byte-identical to a clean
#      single-node run — the fabric absorbs every injected wire fault;
#   2. fsck finds every planted corruption, quarantines without
#      deleting, repairs the torn journal tail, and exits nonzero;
#   3. a second fsck pass is clean (exit 0), and re-running the sweep
#      with -resume recomputes exactly the quarantined cell.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/bioperf5" ./cmd/bioperf5

w1_port=18095
w2_port=18096

sweep_args=(sweep -apps Clustalw,Fasta -fxus 2,3 -btac off,8
            -variants original -seeds 1 -scale 2)

# canon strips the operational fields (timing, scheduler and cluster
# counters, the stage profile); determinism is asserted on the rest.
canon() {
  python3 - "$1" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
for k in ("elapsed_ms", "scheduler", "cluster", "profile"):
    m.pop(k, None)
print(json.dumps(m, sort_keys=True, indent=1))
PY
}

start_worker() { # port
  local port="$1"; shift
  "$work/bioperf5" serve -addr "127.0.0.1:$port" "$@" \
    2>> "$work/serve-$port.stderr" &
  pids+=($!)
  disown $!
}

wait_ready() { # port...
  for port in "$@"; do
    local ok=0
    for _ in $(seq 1 50); do
      if curl -fsS "http://127.0.0.1:$port/readyz" > /dev/null 2>&1; then ok=1; break; fi
      sleep 0.2
    done
    if [ "$ok" -ne 1 ]; then
      echo "FAIL: worker on :$port never became ready" >&2
      cat "$work/serve-$port.stderr" >&2 || true
      exit 1
    fi
  done
}

echo "== single-node reference (fault-free)"
"$work/bioperf5" "${sweep_args[@]}" -workers 2 -json > "$work/ref.json"

echo "== distributed sweep with the coordinator transport under chaos"
start_worker "$w1_port"
start_worker "$w2_port"
wait_ready "$w1_port" "$w2_port"
chaos="seed=42,refuse=0.15,latency=0.15,latdelay=2ms,http5xx=0.2"
chaos="$chaos,cut=0.15,corruptline=0.15,dupitem=0.15,times=2"
chaos="$chaos,blackout=$w2_port@2+3"
BIOPERF5_FAULTS="$chaos" "$work/bioperf5" "${sweep_args[@]}" \
  -workers "http://127.0.0.1:$w1_port,http://127.0.0.1:$w2_port" \
  -json > "$work/chaos.json" 2> "$work/chaos.stderr"

grep -q "network chaos enabled" "$work/chaos.stderr" || {
  echo "FAIL: coordinator never armed the chaos transport" >&2
  cat "$work/chaos.stderr" >&2
  exit 1
}

canon "$work/ref.json"   > "$work/ref.canon"
canon "$work/chaos.json" > "$work/chaos.canon"
if ! diff -u "$work/ref.canon" "$work/chaos.canon"; then
  echo "FAIL: chaotic distributed manifest differs from the fault-free single-node run" >&2
  exit 1
fi
python3 - "$work/chaos.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))["cluster"]
assert c["failed_cells"] == 0, f"chaos must not fail cells: {c}"
assert c["completed"] == c["cells"], c
print(f"   chaos run converged: {c['cells']} cells, {c['http_retries']} HTTP retries, "
      f"{c['redispatched']} re-dispatched, {c['breaker_trips']} breaker trips, "
      f"{c['duplicates']} duplicate results dropped")
PY
echo "   chaotic manifest byte-identical to the fault-free run"

echo "== seed a resumable local sweep, then damage its state directory"
state="$work/state"
"$work/bioperf5" "${sweep_args[@]}" -workers 2 -resume "$state" -json > "$work/local.json"
canon "$work/local.json" > "$work/local.canon"
diff -u "$work/ref.canon" "$work/local.canon" > /dev/null

victim="$(find "$state" -maxdepth 1 -regextype posix-extended \
          -regex '.*/[0-9a-f]{64}\.json' | sort | head -1)"
trace_victim="$(find "$state/traces" -name '*.trace' | sort | head -1)"
python3 - "$victim" "$trace_victim" <<'PY'
import os, sys
for path in sys.argv[1:3]:  # tear both files in half, as a torn write would
    os.truncate(path, os.path.getsize(path) // 2)
PY
printf '{"hash":"torn-mid-wri' >> "$state/journal.jsonl"
: > "$state/$(printf 'a%.0s' $(seq 1 64) | tr a f).tmp42"  # stale temp file

echo "== fsck: must find all four, quarantine, repair, exit nonzero"
if "$work/bioperf5" fsck "$state" > "$work/fsck1.json" 2> "$work/fsck1.stderr"; then
  echo "FAIL: fsck exited zero on a damaged tree" >&2
  cat "$work/fsck1.json" >&2
  exit 1
fi
python3 - "$work/fsck1.json" "$victim" <<'PY'
import json, os, sys
rep = json.load(open(sys.argv[1]))
kinds = {f["kind"] for f in rep["findings"]}
want = {"cache-entry-corrupt", "trace-corrupt", "journal-torn-tail", "stale-temp"}
assert want <= kinds, f"missing kinds: {want - kinds} in {kinds}"
assert rep["quarantined"] >= 3, rep
assert rep["repaired"] >= 1, rep
assert not os.path.exists(sys.argv[2]), "corrupt entry left at its address"
for f in rep["findings"]:
    if f.get("quarantined_to"):
        assert os.path.exists(f["quarantined_to"]), f"quarantine lost {f}"
print(f"   fsck: {rep['damaged']} damaged, {rep['quarantined']} quarantined, "
      f"{rep['repaired']} repaired across {rep['scanned']} files")
PY

echo "== fsck again: the scrubbed tree must be clean"
"$work/bioperf5" fsck "$state" > "$work/fsck2.json"
python3 - "$work/fsck2.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["damaged"] == 0, f"second pass re-reported damage: {rep}"
PY

echo "== resume: recomputes exactly the quarantined cell"
"$work/bioperf5" "${sweep_args[@]}" -workers 2 -resume "$state" -json > "$work/resumed.json"
canon "$work/resumed.json" > "$work/resumed.canon"
if ! diff -u "$work/ref.canon" "$work/resumed.canon"; then
  echo "FAIL: post-fsck resumed manifest differs from the reference" >&2
  exit 1
fi
python3 - "$work/resumed.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))["scheduler"]
assert s["computed"] == 1, f"resume should recompute only the quarantined cell: {s}"
assert s["disk_corrupt"] == 0, f"fsck left corruption behind: {s}"
print(f"   resume: {s['computed']} recomputed, {s['disk_hits']} disk hits, "
      f"{s['journal_resumed']} journal-resumed")
PY

echo "PASS: chaos sweep byte-identical; fsck quarantined, repaired, and resume recomputed only the damage"
