#!/usr/bin/env bash
# bp_sweep_smoke.sh — predictor-zoo sweep smoke: run a small
# predictor x app factorial twice against one shared -cache-dir.  The
# cold run simulates; the warm run — a fresh process spelling every
# predictor spec differently — must produce a byte-identical manifest
# with >= 90% of its cells served from the cache (spec canonicalization
# is what makes differently-spelled sweeps share entries).  Then the
# per-static-branch profiler: `bioperf5 branches -json` must attribute
# the machine-wide mispredict counters exactly across its sites, and a
# malformed spec must fail fast listing the registered predictors.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/bioperf5" ./cmd/bioperf5

sweep_args=(sweep -apps Clustalw,Fasta -fxus 2 -btac off,8
            -variants original -seeds 1 -scale 2
            -cache-dir "$work/cache")

# canon strips the operational fields (timing, scheduler counters, the
# stage profile); determinism is asserted on the rest.
canon() {
  python3 - "$1" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
for k in ("elapsed_ms", "scheduler", "cluster", "profile"):
    m.pop(k, None)
print(json.dumps(m, sort_keys=True, indent=1))
PY
}

echo "== cold run: predictor zoo factorial"
"$work/bioperf5" "${sweep_args[@]}" \
  -predictors 'tournament;tage:tables=4,hist=2..64;perceptron' \
  -json > "$work/cold.json"

echo "== warm run: fresh process, every spec spelled differently"
"$work/bioperf5" "${sweep_args[@]}" \
  -predictors ' TOURNAMENT : hist=11 , bits=12 ;tage:hist=2..64;perceptron:weights=256,hist=24' \
  -json > "$work/warm.json"

canon "$work/cold.json" > "$work/cold.canon"
canon "$work/warm.json" > "$work/warm.canon"
if ! diff -u "$work/cold.canon" "$work/warm.canon"; then
  echo "FAIL: warm manifest differs from cold manifest across spellings" >&2
  exit 1
fi
echo "   manifests byte-identical across predictor spellings"

python3 - "$work/warm.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
preds = m["spec"]["predictors"]
assert len(preds) == 3, f"expected 3 canonical predictors, got {preds}"
assert all(":" in p for p in preds), f"non-canonical predictor in manifest spec: {preds}"
s = m["scheduler"]
rate = (s["memory_hits"] + s["disk_hits"]) / s["submitted"]
print(f"   warm run: {s['submitted']} cells, {s['memory_hits']} memory hits, "
      f"{s['disk_hits']} disk hits ({rate:.0%})")
assert rate >= 0.9, f"warm cache hit rate {rate:.0%}, want >= 90%: {s}"
PY

echo "== branches report attributes the aggregate counters"
"$work/bioperf5" branches Clustalw -btac 8 -seeds 1 \
  -predictor 'tage:tables=4,hist=2..64' -json > "$work/branches.json"
python3 - "$work/branches.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["predictor"] == "tage:tables=4,bits=10,tag=8,hist=2..64", r["predictor"]
rows = r["branches"]
assert rows, "no branch sites profiled"
execd = sum(b["executed"] for b in rows)
miss = sum(b["mispredicts"] for b in rows)
wrong = sum(b.get("btac_wrong", 0) for b in rows)
assert execd == r["cond_branches"], (execd, r["cond_branches"])
assert miss == r["dir_mispredicts"], (miss, r["dir_mispredicts"])
assert wrong == r["tgt_mispredicts"], (wrong, r["tgt_mispredicts"])
classes = sum(r["classes"].values())
assert classes == len(rows), (classes, len(rows))
print(f"   {len(rows)} sites attribute {miss} direction + {wrong} target mispredicts exactly")
PY

echo "== malformed spec fails fast, listing the registered predictors"
if "$work/bioperf5" sweep -predictors 'no-such-predictor' -apps Fasta \
     -fxus 2 -btac off -variants original -seeds 1 > /dev/null 2> "$work/bad.stderr"; then
  echo "FAIL: malformed predictor spec was accepted" >&2
  exit 1
fi
if ! grep -q 'registered' "$work/bad.stderr"; then
  echo "FAIL: spec error does not list the registered predictors:" >&2
  cat "$work/bad.stderr" >&2
  exit 1
fi
echo "   rejected with: $(cat "$work/bad.stderr")"

echo "PASS: predictor sweeps cache-coalesce across spellings; branch profile attribution exact"
